//! # fmsa-wasm — a WebAssembly frontend for the FMSA reproduction
//!
//! Everything measured by the reproduction so far ran on synthetic IR; the
//! paper's pitch is code-size reduction on *real* programs. WebAssembly is
//! the ideal real-binary input: a small, stable, self-contained format
//! whose `i32`/`i64`/`f32`/`f64` types and structured control flow lower
//! cleanly onto the LLVM-flavoured `fmsa_ir`. This crate provides, with no
//! external dependencies:
//!
//! * a **decoder** for the core-MVP binary format ([`parse_wasm`]):
//!   section framing, LEB128, type/function/memory/export/code sections,
//!   and the full MVP numeric/control operator set ([`decode::Op`]);
//! * a **lowering pass** ([`lower_module`]): operand-stack symbolic
//!   execution to SSA values, `block`/`loop`/`if` structured control flow
//!   to CFG blocks with `br`/`condbr` (`br_table` becomes `switch`),
//!   locals to `alloca`/`load`/`store` (unwritten parameters stay direct
//!   SSA), and linear-memory accesses to `gep` + `load`/`store` against a
//!   threaded module-memory base pointer;
//! * an **emitter** ([`encode::WasmBuilder`]) used by
//!   `fmsa_workloads::wasm_fixtures` to serialize generated modules to
//!   valid wasm bytes, giving the repo an offline corpus and an
//!   emit→decode→verify round-trip property.
//!
//! Unsupported-feature policy: anything outside the supported subset is
//! rejected loudly with a [`WasmError`] naming the section or opcode and
//! the byte offset — never silently skipped (see `docs/frontend.md`).
//!
//! # Examples
//!
//! ```
//! use fmsa_wasm::encode::{CodeWriter, WasmBuilder};
//! use fmsa_wasm::{is_wasm, load_wasm, ValType};
//!
//! // Emit a one-function module: (func (export "add1") (param i32) (result i32) ...)
//! let mut b = WasmBuilder::new();
//! let ty = b.add_type(&[ValType::I32], &[ValType::I32]);
//! let mut code = CodeWriter::new();
//! code.local_get(0);
//! code.i32_const(1);
//! code.i32_add();
//! let f = b.add_function(ty, &[], code);
//! b.export_func("add1", f);
//! let bytes = b.finish();
//!
//! assert!(is_wasm(&bytes));
//! let module = load_wasm(&bytes, "demo").unwrap();
//! assert!(fmsa_ir::verify_module(&module).is_empty());
//! assert!(module.func_by_name("add1").is_some());
//! ```

#![warn(missing_docs)]

pub mod decode;
pub mod encode;
pub mod leb128;
pub mod lower;

pub use decode::{parse_wasm, FuncType, Limits, WasmModule};
pub use lower::lower_module;

use std::error::Error;
use std::fmt;

/// The 4-byte magic at the start of every wasm binary (`\0asm`).
pub const WASM_MAGIC: [u8; 4] = *b"\0asm";

/// The only binary-format version this decoder accepts.
pub const WASM_VERSION: u32 = 1;

/// Whether `bytes` starts with the wasm magic (`\0asm`) — the format
/// auto-detection used by `fmsa_opt` and the experiment harness.
pub fn is_wasm(bytes: &[u8]) -> bool {
    bytes.len() >= 4 && bytes[..4] == WASM_MAGIC
}

/// Convenience: decode `bytes` and lower the result to an
/// [`fmsa_ir::Module`] named `name`.
///
/// # Errors
///
/// Returns a [`WasmError`] if the binary is malformed, truncated, or uses
/// a feature outside the supported core-MVP subset.
pub fn load_wasm(bytes: &[u8], name: &str) -> Result<fmsa_ir::Module, WasmError> {
    let wasm = parse_wasm(bytes)?;
    lower_module(&wasm, name)
}

/// A wasm value type (the MVP numeric types).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ValType {
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 32-bit IEEE-754 float.
    F32,
    /// 64-bit IEEE-754 float.
    F64,
}

impl ValType {
    /// The binary encoding of this value type.
    pub fn byte(self) -> u8 {
        match self {
            ValType::I32 => 0x7f,
            ValType::I64 => 0x7e,
            ValType::F32 => 0x7d,
            ValType::F64 => 0x7c,
        }
    }

    /// Decodes a value-type byte.
    pub fn from_byte(b: u8) -> Option<ValType> {
        match b {
            0x7f => Some(ValType::I32),
            0x7e => Some(ValType::I64),
            0x7d => Some(ValType::F32),
            0x7c => Some(ValType::F64),
            _ => None,
        }
    }

    /// Human-readable name (`i32`, `f64`, ...).
    pub fn name(self) -> &'static str {
        match self {
            ValType::I32 => "i32",
            ValType::I64 => "i64",
            ValType::F32 => "f32",
            ValType::F64 => "f64",
        }
    }
}

/// Why a wasm binary was rejected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WasmErrorKind {
    /// The input ended before the announced structure did.
    Truncated,
    /// Structurally invalid bytes (bad magic, malformed LEB128, wrong
    /// section framing, type errors the decoder can detect).
    Malformed,
    /// A well-formed construct outside the supported core-MVP subset
    /// (named section, opcode, or form). The policy is to reject loudly,
    /// never to skip silently.
    Unsupported,
}

/// A decoding/lowering failure: what went wrong and the byte offset in the
/// input where it was detected.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WasmError {
    /// Failure class.
    pub kind: WasmErrorKind,
    /// Byte offset into the wasm input where the problem sits.
    pub offset: usize,
    /// Description naming the section/opcode/construct involved.
    pub message: String,
}

impl WasmError {
    /// A [`WasmErrorKind::Truncated`] error at `offset`.
    pub fn truncated(offset: usize, what: impl Into<String>) -> WasmError {
        WasmError { kind: WasmErrorKind::Truncated, offset, message: what.into() }
    }

    /// A [`WasmErrorKind::Malformed`] error at `offset`.
    pub fn malformed(offset: usize, what: impl Into<String>) -> WasmError {
        WasmError { kind: WasmErrorKind::Malformed, offset, message: what.into() }
    }

    /// A [`WasmErrorKind::Unsupported`] error at `offset`.
    pub fn unsupported(offset: usize, what: impl Into<String>) -> WasmError {
        WasmError { kind: WasmErrorKind::Unsupported, offset, message: what.into() }
    }
}

impl fmt::Display for WasmError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let kind = match self.kind {
            WasmErrorKind::Truncated => "truncated wasm input",
            WasmErrorKind::Malformed => "malformed wasm",
            WasmErrorKind::Unsupported => "unsupported wasm feature",
        };
        write!(f, "{kind} at byte offset {:#06x}: {}", self.offset, self.message)
    }
}

impl Error for WasmError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn magic_detection() {
        assert!(is_wasm(b"\0asm\x01\0\0\0"));
        assert!(!is_wasm(b"; module textual"));
        assert!(!is_wasm(b"\0as"));
    }

    #[test]
    fn valtype_bytes_roundtrip() {
        for vt in [ValType::I32, ValType::I64, ValType::F32, ValType::F64] {
            assert_eq!(ValType::from_byte(vt.byte()), Some(vt));
        }
        assert_eq!(ValType::from_byte(0x70), None);
    }

    #[test]
    fn error_display_names_offset_and_feature() {
        let e = WasmError::unsupported(0x2a, "import section (id 2)");
        let s = e.to_string();
        assert!(s.contains("0x002a"), "{s}");
        assert!(s.contains("import section"), "{s}");
        assert!(s.contains("unsupported"), "{s}");
    }
}
