//! LEB128 variable-length integers — the number encoding of the wasm
//! binary format. Readers work over a byte slice with an explicit cursor
//! so every error carries the absolute byte offset; writers append to a
//! `Vec<u8>` and are shared with the [`crate::encode`] emitter.

use crate::WasmError;

/// A bounds-checked reader over a byte slice, tracking an absolute offset
/// for error reporting. The decoder threads one reader through the whole
/// binary; section bodies get sub-readers with the proper base offset.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    bytes: &'a [u8],
    /// Offset of `bytes[0]` within the original input.
    base: usize,
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Reader over `bytes`, reporting offsets relative to `base`.
    pub fn new(bytes: &'a [u8], base: usize) -> Reader<'a> {
        Reader { bytes, base, pos: 0 }
    }

    /// Absolute offset of the next unread byte.
    pub fn offset(&self) -> usize {
        self.base + self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn at_end(&self) -> bool {
        self.pos >= self.bytes.len()
    }

    /// Bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.bytes.len() - self.pos
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`WasmError::truncated`] when no byte is left.
    pub fn byte(&mut self, what: &str) -> Result<u8, WasmError> {
        match self.bytes.get(self.pos) {
            Some(&b) => {
                self.pos += 1;
                Ok(b)
            }
            None => Err(WasmError::truncated(self.offset(), what.to_owned())),
        }
    }

    /// Reads `n` raw bytes.
    ///
    /// # Errors
    ///
    /// [`WasmError::truncated`] when fewer than `n` bytes are left.
    pub fn take(&mut self, n: usize, what: &str) -> Result<&'a [u8], WasmError> {
        if self.remaining() < n {
            return Err(WasmError::truncated(self.offset(), format!("{what} ({n} bytes)")));
        }
        let s = &self.bytes[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads an unsigned LEB128 `u32`.
    ///
    /// # Errors
    ///
    /// Truncated input or an encoding longer than 5 bytes.
    pub fn u32(&mut self, what: &str) -> Result<u32, WasmError> {
        let v = self.unsigned(5, what)?;
        u32::try_from(v)
            .map_err(|_| WasmError::malformed(self.offset(), format!("{what}: u32 out of range")))
    }

    /// Reads an unsigned LEB128 `u64`.
    ///
    /// # Errors
    ///
    /// Truncated input or an encoding longer than 10 bytes.
    pub fn u64(&mut self, what: &str) -> Result<u64, WasmError> {
        self.unsigned(10, what)
    }

    fn unsigned(&mut self, max_bytes: usize, what: &str) -> Result<u64, WasmError> {
        let start = self.offset();
        let mut result = 0u64;
        let mut shift = 0u32;
        for k in 0..max_bytes {
            let b = self.byte(what)?;
            let payload = (b & 0x7f) as u64;
            // The final byte must fit in the remaining bits.
            if shift >= 64 || (shift == 63 && payload > 1) {
                return Err(WasmError::malformed(start, format!("{what}: LEB128 overflows u64")));
            }
            result |= payload << shift;
            if b & 0x80 == 0 {
                return Ok(result);
            }
            shift += 7;
            if k + 1 == max_bytes {
                return Err(WasmError::malformed(start, format!("{what}: LEB128 too long")));
            }
        }
        unreachable!("loop returns or errors")
    }

    /// Reads a signed LEB128 `s32`, rejecting encodings whose value (or
    /// unused final-byte bits) fall outside the 32-bit signed range, as
    /// the wasm spec requires.
    ///
    /// # Errors
    ///
    /// Truncated input, an over-long encoding, or an out-of-range value.
    pub fn i32(&mut self, what: &str) -> Result<i32, WasmError> {
        let start = self.offset();
        let v = self.signed(32, what)?;
        // ≤ 5 bytes build the mathematical value faithfully in i64, so
        // the spec's "unused bits must be sign extension" rule is exactly
        // a range check.
        i32::try_from(v).map_err(|_| {
            WasmError::malformed(start, format!("{what}: s32 LEB128 out of range ({v})"))
        })
    }

    /// Reads a signed LEB128 `s64`, rejecting encodings whose unused
    /// final-byte bits are not proper sign extension.
    ///
    /// # Errors
    ///
    /// Truncated input, an over-long encoding, or malformed sign bits.
    pub fn i64(&mut self, what: &str) -> Result<i64, WasmError> {
        self.signed(64, what)
    }

    fn signed(&mut self, bits: u32, what: &str) -> Result<i64, WasmError> {
        let start = self.offset();
        let max_bytes = bits.div_ceil(7) as usize;
        let mut result = 0i64;
        let mut shift = 0u32;
        for k in 0..max_bytes {
            let b = self.byte(what)?;
            if shift < 64 {
                result |= ((b & 0x7f) as i64) << shift;
            }
            if b & 0x80 == 0 {
                if shift + 7 < 64 && b & 0x40 != 0 {
                    result |= -1i64 << (shift + 7); // sign-extend
                }
                // A 10th s64 byte carries one value bit (bit 63); its
                // remaining payload bits sit beyond the width and must be
                // proper sign extension of it (spec: `0x00` or `0x7f`).
                if bits == 64 && shift == 63 && b != 0x00 && b != 0x7f {
                    return Err(WasmError::malformed(
                        start,
                        format!("{what}: s64 LEB128 final-byte bits exceed the value range"),
                    ));
                }
                return Ok(result);
            }
            shift += 7;
            if k + 1 == max_bytes {
                return Err(WasmError::malformed(start, format!("{what}: LEB128 too long")));
            }
        }
        unreachable!("loop returns or errors")
    }

    /// Reads a little-endian `f32` (4 raw bytes).
    ///
    /// # Errors
    ///
    /// [`WasmError::truncated`] when fewer than 4 bytes are left.
    pub fn f32(&mut self, what: &str) -> Result<f32, WasmError> {
        let b = self.take(4, what)?;
        Ok(f32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `f64` (8 raw bytes).
    ///
    /// # Errors
    ///
    /// [`WasmError::truncated`] when fewer than 8 bytes are left.
    pub fn f64(&mut self, what: &str) -> Result<f64, WasmError> {
        let b = self.take(8, what)?;
        Ok(f64::from_le_bytes([b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7]]))
    }

    /// Reads a name (LEB128 length + UTF-8 bytes).
    ///
    /// # Errors
    ///
    /// Truncated input or invalid UTF-8.
    pub fn name(&mut self) -> Result<String, WasmError> {
        let start = self.offset();
        let len = self.u32("name length")? as usize;
        let bytes = self.take(len, "name bytes")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| WasmError::malformed(start, "name is not valid UTF-8"))
    }
}

/// Appends an unsigned LEB128 encoding of `v`.
pub fn write_u32(out: &mut Vec<u8>, v: u32) {
    write_u64(out, v as u64);
}

/// Appends an unsigned LEB128 encoding of `v`.
pub fn write_u64(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

/// Appends a signed LEB128 encoding of `v`.
pub fn write_i32(out: &mut Vec<u8>, v: i32) {
    write_i64(out, v as i64);
}

/// Appends a signed LEB128 encoding of `v`.
pub fn write_i64(out: &mut Vec<u8>, mut v: i64) {
    loop {
        let b = (v & 0x7f) as u8;
        v >>= 7; // arithmetic shift keeps the sign
        let done = (v == 0 && b & 0x40 == 0) || (v == -1 && b & 0x40 != 0);
        if done {
            out.push(b);
            return;
        }
        out.push(b | 0x80);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_u64(v: u64) -> u64 {
        let mut buf = Vec::new();
        write_u64(&mut buf, v);
        Reader::new(&buf, 0).u64("t").expect("decodes")
    }

    fn roundtrip_i64(v: i64) -> i64 {
        let mut buf = Vec::new();
        write_i64(&mut buf, v);
        Reader::new(&buf, 0).i64("t").expect("decodes")
    }

    #[test]
    fn unsigned_roundtrip() {
        for v in [0u64, 1, 127, 128, 300, 624485, u32::MAX as u64, u64::MAX] {
            assert_eq!(roundtrip_u64(v), v);
        }
    }

    #[test]
    fn signed_roundtrip() {
        for v in [0i64, 1, -1, 63, 64, -64, -65, 127, -123456, i32::MIN as i64, i64::MAX, i64::MIN]
        {
            assert_eq!(roundtrip_i64(v), v);
        }
    }

    #[test]
    fn truncated_reports_absolute_offset() {
        let e = Reader::new(&[0x80], 100).u32("count").expect_err("truncated");
        assert_eq!(e.offset, 101);
        assert!(e.to_string().contains("count"));
    }

    #[test]
    fn overlong_rejected() {
        let e = Reader::new(&[0x80, 0x80, 0x80, 0x80, 0x80, 0x01], 0).u32("n").expect_err("long");
        assert!(e.to_string().contains("LEB128"));
    }

    #[test]
    fn s32_out_of_range_bits_rejected() {
        // 5-byte encoding whose final byte sets bit 32: mathematically
        // 2^32, not representable as s32 — must error, not wrap to 0.
        let e = Reader::new(&[0x80, 0x80, 0x80, 0x80, 0x10], 0).i32("c").expect_err("range");
        assert!(e.to_string().contains("out of range"), "{e}");
        // Bound values still decode (non-shortest encodings are legal).
        let min = Reader::new(&[0x80, 0x80, 0x80, 0x80, 0x78], 0).i32("c").unwrap();
        assert_eq!(min, i32::MIN);
        let max = Reader::new(&[0xff, 0xff, 0xff, 0xff, 0x07], 0).i32("c").unwrap();
        assert_eq!(max, i32::MAX);
    }

    #[test]
    fn s64_final_byte_sign_bits_checked() {
        let mut ten = vec![0x80u8; 9];
        ten.push(0x01); // bit 63 set but unused bits not sign-extended
        let e = Reader::new(&ten, 0).i64("c").expect_err("bad sign bits");
        assert!(e.to_string().contains("value range"), "{e}");
        let mut min = vec![0x80u8; 9];
        min.push(0x7f);
        assert_eq!(Reader::new(&min, 0).i64("c").unwrap(), i64::MIN);
        let mut zero = vec![0x80u8; 9];
        zero.push(0x00);
        assert_eq!(Reader::new(&zero, 0).i64("c").unwrap(), 0);
    }

    #[test]
    fn floats_roundtrip() {
        let mut buf = Vec::new();
        buf.extend_from_slice(&2.5f32.to_le_bytes());
        buf.extend_from_slice(&(-1.25f64).to_le_bytes());
        let mut r = Reader::new(&buf, 0);
        assert_eq!(r.f32("a").unwrap(), 2.5);
        assert_eq!(r.f64("b").unwrap(), -1.25);
    }

    #[test]
    fn names_decode() {
        let mut buf = Vec::new();
        write_u32(&mut buf, 3);
        buf.extend_from_slice(b"abc");
        assert_eq!(Reader::new(&buf, 0).name().unwrap(), "abc");
    }
}
