//! Lowering from decoded wasm to [`fmsa_ir`].
//!
//! The translation is the classic structured-stack-machine-to-CFG scheme:
//!
//! * **Operand stack → SSA.** The body is executed symbolically with a
//!   stack of [`Value`]s; every wasm operator that produces a value pushes
//!   the IR instruction result that computes it.
//! * **Structured control flow → CFG.** Each `block`/`loop`/`if` pushes a
//!   control frame carrying its branch target (the *end* block for
//!   `block`/`if`, the *header* block for `loop`) and, when the construct
//!   has a result type, an `alloca`ted *result slot*: every branch or
//!   fallthrough that leaves a value stores to the slot, and the join
//!   block reloads it. This sidesteps φ placement entirely — the φ-demotion
//!   pass the paper applies before merging would erase φs anyway.
//!   `br` becomes `br`, `br_if` a `condbr` to a fresh continuation block,
//!   `br_table` a `switch`, and `return` a direct `ret`.
//! * **Locals → `alloca`/`load`/`store`, or direct SSA.** A parameter that
//!   is never written by `local.set`/`local.tee` stays a direct
//!   [`Value::Param`]; every other local gets an entry-block `alloca`
//!   (parameters store their initial value, declared locals their wasm
//!   zero-init).
//! * **Linear memory → `gep` + `load`/`store`.** When the module declares
//!   a memory, every function takes a leading `i8* %mem` parameter — the
//!   module-level memory object, threaded through direct calls the way
//!   wasm-targeting compilers thread an instance pointer. An access at
//!   dynamic address `a` with constant offset `k` lowers to
//!   `zext a to i64`, `add`, `gep i8 -> T` and a typed `load`/`store`;
//!   sub-width accesses truncate/extend around an `i8`/`i16`/`i32` access
//!   type. The `zext`+64-bit add matches wasm's 33-bit effective-address
//!   arithmetic.
//!
//! Dead code after `br`/`return`/`unreachable` is skipped (tracking block
//! nesting) until the enclosing `else`/`end` — no IR is emitted for it, so
//! the lowered module never contains trivially-unreachable instructions.
//!
//! Exported functions keep their (sanitized) export names and get
//! [`Linkage::External`], so merging keeps them callable by name —
//! exactly wasm's visibility semantics. Everything else is `f{index}`
//! with internal linkage.

use crate::decode::{BlockType, MemArg, Op, WasmModule};
use crate::{ValType, WasmError};
use fmsa_ir::{
    ExtraData, FuncBuilder, FuncId, Inst, IntPredicate, Linkage, Module, Opcode, TyId, Value,
};
use std::collections::{HashMap, HashSet};

/// Lowers a decoded module to an [`fmsa_ir::Module`] named `name`.
///
/// # Errors
///
/// Returns a [`WasmError`] (with byte offsets) for malformed bodies —
/// operand-stack underflow, out-of-range local/function indices, memory
/// access without a declared memory — and for unsupported operators.
pub fn lower_module(wasm: &WasmModule, name: &str) -> Result<Module, WasmError> {
    let mut module = Module::new(name);
    let has_memory = wasm.memory.is_some();
    let n = wasm.funcs.len();

    // Assign names: a function's first export names it; further exports
    // of the same function (legal wasm) become forwarding thunks below,
    // so every exported name stays callable.
    let mut names: Vec<Option<String>> = vec![None; n];
    let mut used: HashSet<String> = HashSet::new();
    let mut aliases: Vec<(String, usize)> = Vec::new();
    for e in &wasm.exports {
        let s = sanitize(&e.name);
        if !used.insert(s.clone()) {
            return Err(WasmError::malformed(
                wasm.byte_len(),
                format!("duplicate export name {:?} after sanitization", e.name),
            ));
        }
        let slot = &mut names[e.func as usize];
        if slot.is_some() {
            aliases.push((s, e.func as usize));
        } else {
            *slot = Some(s);
        }
    }
    let exported: Vec<bool> = names.iter().map(Option::is_some).collect();
    for (i, slot) in names.iter_mut().enumerate() {
        if slot.is_none() {
            let mut s = format!("f{i}");
            while !used.insert(s.clone()) {
                s.push('_');
            }
            *slot = Some(s);
        }
    }

    // Create every function up front so call operands resolve regardless
    // of definition order.
    let i8p = {
        let i8t = module.types.i8();
        module.types.ptr(i8t)
    };
    let mut fids: Vec<FuncId> = Vec::with_capacity(n);
    for i in 0..n {
        let sig = wasm.func_type(i as u32);
        let mut params: Vec<TyId> = Vec::with_capacity(sig.params.len() + 1);
        if has_memory {
            params.push(i8p);
        }
        params.extend(sig.params.iter().map(|&vt| vt_ty(&module, vt)));
        let ret = match sig.results.first() {
            Some(&vt) => vt_ty(&module, vt),
            None => module.types.void(),
        };
        let fn_ty = module.types.func(ret, params);
        let fid = module.create_function(names[i].clone().expect("assigned above"), fn_ty);
        module.func_mut(fid).linkage =
            if exported[i] { Linkage::External } else { Linkage::Internal };
        if has_memory {
            module.func_mut(fid).params_mut()[0].name = "mem".to_owned();
        }
        fids.push(fid);
    }

    for i in 0..n {
        let mut lo = Lowerer {
            b: FuncBuilder::new(&mut module, fids[i]),
            wasm,
            fids: &fids,
            has_memory,
            entry: fmsa_ir::BlockId::from_index(0), // set in lower_body
            entry_allocas: 0,
            locals: Vec::new(),
            stack: Vec::new(),
            ctrl: Vec::new(),
            skip_depth: 0,
            bools: HashMap::new(),
        };
        lo.lower_body(i)?;
    }

    // Alias exports: a second export name for an already-named function
    // becomes an external forwarding thunk, so the public symbol exists
    // and behaves identically instead of silently vanishing.
    for (name, func) in aliases {
        let target = fids[func];
        let fn_ty = module.func(target).fn_ty();
        let alias = module.create_function(name, fn_ty);
        module.func_mut(alias).linkage = Linkage::External;
        if has_memory {
            module.func_mut(alias).params_mut()[0].name = "mem".to_owned();
        }
        let n_params = module.types.fn_params(fn_ty).expect("function type").len();
        let is_void = module.types.fn_ret(fn_ty) == Some(module.types.void());
        let mut b = FuncBuilder::new(&mut module, alias);
        let entry = b.block("entry");
        b.switch_to(entry);
        let args = (0..n_params).map(|k| Value::Param(k as u32)).collect();
        let r = b.call(target, args);
        b.ret(if is_void { None } else { Some(r) });
    }
    Ok(module)
}

fn sanitize(name: &str) -> String {
    let mut s: String = name
        .chars()
        .map(|c| if c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '-') { c } else { '_' })
        .collect();
    if s.is_empty() {
        s.push_str("export");
    }
    s
}

fn vt_ty(m: &Module, vt: ValType) -> TyId {
    match vt {
        ValType::I32 => m.types.i32(),
        ValType::I64 => m.types.i64(),
        ValType::F32 => m.types.f32(),
        ValType::F64 => m.types.f64(),
    }
}

/// Where a wasm local lives after lowering.
enum Slot {
    /// A parameter never written to: used directly as SSA.
    Direct(Value),
    /// An entry-block `alloca`; reads `load`, writes `store`.
    Stack { ptr: Value },
}

/// One entry of the structured control stack.
struct Frame {
    /// `loop` frames branch to their header; others to their end block.
    is_loop: bool,
    br_target: fmsa_ir::BlockId,
    end_block: fmsa_ir::BlockId,
    /// For `if` frames: the else block, until `else` (or `end`) claims it.
    pending_else: Option<fmsa_ir::BlockId>,
    /// Result slot when the block type carries a value.
    result: Option<(TyId, Value)>,
    /// Operand-stack height at frame entry.
    stack_height: usize,
    /// Whether the current code path inside this frame already terminated.
    dead: bool,
}

struct Lowerer<'m, 'w> {
    b: FuncBuilder<'m>,
    wasm: &'w WasmModule,
    fids: &'w [FuncId],
    has_memory: bool,
    entry: fmsa_ir::BlockId,
    /// How many allocas sit at the top of the entry block (new result
    /// slots are inserted at this position so they dominate everything).
    entry_allocas: usize,
    locals: Vec<Slot>,
    stack: Vec<Value>,
    ctrl: Vec<Frame>,
    /// Nesting depth of skipped (dead) constructs.
    skip_depth: u32,
    /// `zext i1 -> i32` results, so wasm's compare→branch idiom lowers
    /// back to a direct `i1` condition instead of `icmp ne (zext ...), 0`.
    bools: HashMap<Value, Value>,
}

impl Lowerer<'_, '_> {
    #[allow(clippy::too_many_lines)]
    fn lower_body(&mut self, index: usize) -> Result<(), WasmError> {
        let sig = self.wasm.func_type(index as u32);
        let shift = u32::from(self.has_memory);
        let written = self.prescan(index)?;

        self.entry = self.b.block("entry");
        self.b.switch_to(self.entry);

        // Local index space: parameters first, then declared locals.
        for (k, &vt) in sig.params.iter().enumerate() {
            let pv = Value::Param(k as u32 + shift);
            if written.contains(&(k as u32)) {
                let ty = vt_ty(self.b.module(), vt);
                let ptr = self.b.alloca(ty);
                self.entry_allocas += 1;
                self.b.store(pv, ptr);
                self.locals.push(Slot::Stack { ptr });
            } else {
                self.locals.push(Slot::Direct(pv));
            }
        }
        for &(count, vt) in &self.wasm.bodies[index].locals {
            for _ in 0..count {
                let ty = vt_ty(self.b.module(), vt);
                let ptr = self.b.alloca(ty);
                self.entry_allocas += 1;
                self.b.store(self.zero_of(vt), ptr); // wasm locals are zero-initialized
                self.locals.push(Slot::Stack { ptr });
            }
        }

        // The function body behaves like a `block` of the result type.
        let exit = self.b.block("exit");
        let ret_vt = sig.results.first().copied();
        let body_result = match ret_vt {
            Some(vt) => {
                let ty = vt_ty(self.b.module(), vt);
                Some((ty, self.slot_alloca(ty)))
            }
            None => None,
        };
        self.ctrl.push(Frame {
            is_loop: false,
            br_target: exit,
            end_block: exit,
            pending_else: None,
            result: body_result,
            stack_height: 0,
            dead: false,
        });

        let mut ops = self.wasm.body_ops(index);
        while !self.ctrl.is_empty() {
            let (at, op) = ops.next_op()?;
            if self.ctrl.last().expect("non-empty").dead {
                self.step_dead(at, &op)?;
            } else {
                self.step(at, &op)?;
            }
        }
        // Cursor now sits in the exit block with the loaded result (if
        // any) on the operand stack.
        match ret_vt {
            Some(_) => {
                let v = self.pop(ops.offset(), "function result")?;
                self.b.ret(Some(v));
            }
            None => self.b.ret(None),
        }
        let fid = self.b.func_id();
        self.b.module_mut().func_mut(fid).move_block_to_end(exit);
        Ok(())
    }

    /// First pass over the body: which locals are ever written (those need
    /// stack slots), and structural sanity of the op stream.
    fn prescan(&mut self, index: usize) -> Result<HashSet<u32>, WasmError> {
        let mut written = HashSet::new();
        let mut depth = 1u32;
        let mut ops = self.wasm.body_ops(index);
        while depth > 0 {
            let (_, op) = ops.next_op()?;
            match op {
                Op::Block(_) | Op::Loop(_) | Op::If(_) => depth += 1,
                Op::End => depth -= 1,
                Op::LocalSet(x) | Op::LocalTee(x) => {
                    written.insert(x);
                }
                _ => {}
            }
        }
        if ops.offset() != self.wasm.bodies[index].code.end {
            return Err(WasmError::malformed(
                ops.offset(),
                "trailing bytes after the function body's final `end`",
            ));
        }
        Ok(written)
    }

    // ----- op dispatch ------------------------------------------------------

    /// Handles one op while the current path is dead: skip everything but
    /// the structure (nested constructs, `else`, `end`).
    fn step_dead(&mut self, at: usize, op: &Op) -> Result<(), WasmError> {
        match op {
            Op::Block(_) | Op::Loop(_) | Op::If(_) => self.skip_depth += 1,
            Op::End if self.skip_depth > 0 => self.skip_depth -= 1,
            Op::Else if self.skip_depth == 0 => self.handle_else(at)?,
            Op::End => self.handle_end(at)?,
            _ => {}
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn step(&mut self, at: usize, op: &Op) -> Result<(), WasmError> {
        match op {
            Op::Nop => {}
            Op::Unreachable => {
                self.b.unreachable();
                self.mark_dead();
            }
            Op::Block(bt) => {
                let end_block = self.b.block("end");
                let result = self.frame_result(*bt);
                self.ctrl.push(Frame {
                    is_loop: false,
                    br_target: end_block,
                    end_block,
                    pending_else: None,
                    result,
                    stack_height: self.stack.len(),
                    dead: false,
                });
            }
            Op::Loop(bt) => {
                let header = self.b.block("loop");
                let end_block = self.b.block("end");
                let result = self.frame_result(*bt);
                self.b.br(header);
                self.b.switch_to(header);
                self.ctrl.push(Frame {
                    is_loop: true,
                    br_target: header,
                    end_block,
                    pending_else: None,
                    result,
                    stack_height: self.stack.len(),
                    dead: false,
                });
            }
            Op::If(bt) => {
                let cond = self.pop_condition(at)?;
                let then_b = self.b.block("then");
                let else_b = self.b.block("else");
                let end_block = self.b.block("end");
                let result = self.frame_result(*bt);
                self.b.condbr(cond, then_b, else_b);
                self.b.switch_to(then_b);
                self.ctrl.push(Frame {
                    is_loop: false,
                    br_target: end_block,
                    end_block,
                    pending_else: Some(else_b),
                    result,
                    stack_height: self.stack.len(),
                    dead: false,
                });
            }
            Op::Else => self.handle_else(at)?,
            Op::End => self.handle_end(at)?,
            Op::Br(l) => {
                self.branch_to(at, *l)?;
                self.mark_dead();
            }
            Op::BrIf(l) => {
                let cond = self.pop_condition(at)?;
                let frame = self.frame_at(at, *l)?;
                let (target, store) = (frame.br_target, frame.result.filter(|_| !frame.is_loop));
                if let Some((_, slot)) = store {
                    // The value stays on the stack for the fallthrough;
                    // the store is dead unless the branch is taken (any
                    // later path to the target's end re-stores).
                    let v = self.peek(at, "br_if value")?;
                    self.b.store(v, slot);
                }
                let cont = self.b.block("cont");
                self.b.condbr(cond, target, cont);
                self.b.switch_to(cont);
            }
            Op::BrTable { targets, default } => {
                let idx = self.pop(at, "br_table index")?;
                // All targets share one result arity (wasm validation);
                // store the value into every distinct value-carrying
                // target's slot — only the taken target's end reloads it.
                let mut labels: Vec<u32> = targets.clone();
                labels.push(*default);
                let mut resolved = Vec::with_capacity(labels.len());
                for &l in &labels {
                    let f = self.frame_at(at, l)?;
                    resolved.push((f.br_target, f.end_block, f.result.filter(|_| !f.is_loop)));
                }
                if resolved.iter().any(|(_, _, r)| r.is_some()) {
                    let v = self.pop(at, "br_table value")?;
                    let mut stored = HashSet::new();
                    for &(_, end, result) in &resolved {
                        if let Some((_, slot)) = result {
                            if stored.insert(end) {
                                self.b.store(v, slot);
                            }
                        }
                    }
                }
                let default_block = resolved.pop().expect("default label resolved").0;
                let i32t = self.b.module().types.i32();
                let cases: Vec<(Value, fmsa_ir::BlockId)> = resolved
                    .iter()
                    .enumerate()
                    .map(|(k, &(target, _, _))| {
                        (Value::ConstInt { ty: i32t, bits: k as u64 }, target)
                    })
                    .collect();
                self.b.switch(idx, default_block, cases);
                self.mark_dead();
            }
            Op::Return => {
                let f = self.b.func_id();
                let ret = self.b.module().func(f).ret_ty(&self.b.module().types);
                if self.b.module().types.get(ret) == &fmsa_ir::Type::Void {
                    self.b.ret(None);
                } else {
                    let v = self.pop(at, "return value")?;
                    self.b.ret(Some(v));
                }
                self.mark_dead();
            }
            Op::Call(f) => {
                let callee_idx = *f as usize;
                if callee_idx >= self.fids.len() {
                    return Err(WasmError::malformed(
                        at,
                        format!("call to function index {f}, only {} exist", self.fids.len()),
                    ));
                }
                let sig = self.wasm.func_type(*f);
                let mut args = Vec::with_capacity(sig.params.len() + 1);
                for _ in 0..sig.params.len() {
                    args.push(self.pop(at, "call argument")?);
                }
                if self.has_memory {
                    args.push(Value::Param(0));
                }
                args.reverse();
                let r = self.b.call(self.fids[callee_idx], args);
                if !sig.results.is_empty() {
                    self.stack.push(r);
                }
            }
            Op::Drop => {
                self.pop(at, "drop")?;
            }
            Op::Select => {
                let cond = self.pop_condition(at)?;
                let v2 = self.pop(at, "select false value")?;
                let v1 = self.pop(at, "select true value")?;
                let r = self.b.select(cond, v1, v2);
                self.stack.push(r);
            }
            Op::LocalGet(x) => {
                let v = match self.local(at, *x)? {
                    Slot::Direct(v) => *v,
                    Slot::Stack { ptr } => {
                        let p = *ptr;
                        self.b.load(p)
                    }
                };
                self.stack.push(v);
            }
            Op::LocalSet(x) => {
                let v = self.pop(at, "local.set value")?;
                self.store_local(at, *x, v)?;
            }
            Op::LocalTee(x) => {
                let v = self.peek(at, "local.tee value")?;
                self.store_local(at, *x, v)?;
            }
            Op::Load(arg) => {
                let v = self.lower_load(at, *arg)?;
                self.stack.push(v);
            }
            Op::Store(arg) => self.lower_store(at, *arg)?,
            Op::I32Const(v) => {
                let ty = self.b.module().types.i32();
                self.stack.push(Value::ConstInt { ty, bits: *v as u32 as u64 });
            }
            Op::I64Const(v) => {
                let ty = self.b.module().types.i64();
                self.stack.push(Value::ConstInt { ty, bits: *v as u64 });
            }
            Op::F32Const(v) => {
                let ty = self.b.module().types.f32();
                self.stack.push(Value::ConstFloat { ty, bits: v.to_bits() as u64 });
            }
            Op::F64Const(v) => {
                let ty = self.b.module().types.f64();
                self.stack.push(Value::ConstFloat { ty, bits: v.to_bits() });
            }
            Op::Eqz(vt) => {
                let v = self.pop(at, "eqz operand")?;
                let zero = Value::ConstInt { ty: vt_ty(self.b.module(), *vt), bits: 0 };
                let c = self.b.icmp(IntPredicate::Eq, v, zero);
                self.push_bool(c);
            }
            Op::ICmp { pred, .. } => {
                let r = self.pop(at, "icmp rhs")?;
                let l = self.pop(at, "icmp lhs")?;
                let c = self.b.icmp(*pred, l, r);
                self.push_bool(c);
            }
            Op::FCmp { pred, .. } => {
                let r = self.pop(at, "fcmp rhs")?;
                let l = self.pop(at, "fcmp lhs")?;
                let c = self.b.fcmp(*pred, l, r);
                self.push_bool(c);
            }
            Op::Binary { op, .. } => {
                let r = self.pop(at, "binary rhs")?;
                let l = self.pop(at, "binary lhs")?;
                let v = self.b.binary(*op, l, r);
                self.stack.push(v);
            }
            Op::Convert { op, to } => {
                let v = self.pop(at, "conversion operand")?;
                let ty = vt_ty(self.b.module(), *to);
                let r = self.b.cast(*op, v, ty);
                self.stack.push(r);
            }
        }
        Ok(())
    }

    // ----- structured control helpers ---------------------------------------

    fn handle_else(&mut self, at: usize) -> Result<(), WasmError> {
        let fr = self.ctrl.last_mut().expect("frame for else");
        let Some(else_b) = fr.pending_else.take() else {
            return Err(WasmError::malformed(at, "`else` outside an `if`"));
        };
        let (dead, result, end_block, height) = (fr.dead, fr.result, fr.end_block, fr.stack_height);
        if !dead {
            if let Some((_, slot)) = result {
                let v = self.pop(at, "if result")?;
                self.b.store(v, slot);
            }
            self.b.br(end_block);
        }
        self.ctrl.last_mut().expect("frame for else").dead = false;
        self.stack.truncate(height);
        self.b.switch_to(else_b);
        Ok(())
    }

    fn handle_end(&mut self, at: usize) -> Result<(), WasmError> {
        let fr = self.ctrl.pop().expect("frame for end");
        if !fr.dead {
            if let Some((_, slot)) = fr.result {
                let v = self.pop(at, "block result")?;
                self.b.store(v, slot);
            }
            self.b.br(fr.end_block);
        }
        if let Some(else_b) = fr.pending_else {
            // `if` without `else`: the false edge falls through — which
            // can produce no value, so a result type makes it invalid
            // wasm (the join would read an uninitialized slot).
            if fr.result.is_some() {
                return Err(WasmError::malformed(
                    at,
                    "`if` with a result type requires an `else` arm",
                ));
            }
            self.b.switch_to(else_b);
            self.b.br(fr.end_block);
        }
        self.stack.truncate(fr.stack_height);
        self.b.switch_to(fr.end_block);
        if let Some((_, slot)) = fr.result {
            let v = self.b.load(slot);
            self.stack.push(v);
        }
        Ok(())
    }

    /// Emits the branch for `br l` (stores the value for value-carrying
    /// targets; loops take no values in the MVP).
    fn branch_to(&mut self, at: usize, l: u32) -> Result<(), WasmError> {
        let fr = self.frame_at(at, l)?;
        let (is_loop, target, result) = (fr.is_loop, fr.br_target, fr.result);
        if !is_loop {
            if let Some((_, slot)) = result {
                let v = self.pop(at, "br value")?;
                self.b.store(v, slot);
            }
        }
        self.b.br(target);
        Ok(())
    }

    fn frame_at(&self, at: usize, l: u32) -> Result<&Frame, WasmError> {
        let depth = self.ctrl.len();
        if (l as usize) >= depth {
            return Err(WasmError::malformed(
                at,
                format!("branch label {l} exceeds the control-stack depth {depth}"),
            ));
        }
        Ok(&self.ctrl[depth - 1 - l as usize])
    }

    fn frame_result(&mut self, bt: BlockType) -> Option<(TyId, Value)> {
        match bt {
            BlockType::Empty => None,
            BlockType::Val(vt) => {
                let ty = vt_ty(self.b.module(), vt);
                Some((ty, self.slot_alloca(ty)))
            }
        }
    }

    fn mark_dead(&mut self) {
        self.ctrl.last_mut().expect("active frame").dead = true;
    }

    /// Allocates a result slot in the entry block, before any other code,
    /// so the slot dominates every store/load regardless of where its
    /// construct sits — and so a slot inside a loop is allocated once, not
    /// per iteration.
    fn slot_alloca(&mut self, ty: TyId) -> Value {
        let fid = self.b.func_id();
        let ptr_ty = self.b.module_mut().types.ptr(ty);
        let inst =
            Inst::with_extra(Opcode::Alloca, ptr_ty, vec![], ExtraData::Alloca { allocated: ty });
        let pos = self.entry_allocas;
        let id = self.b.module_mut().func_mut(fid).insert_inst(self.entry, pos, inst);
        self.entry_allocas += 1;
        Value::Inst(id)
    }

    // ----- locals -----------------------------------------------------------

    fn local(&self, at: usize, x: u32) -> Result<&Slot, WasmError> {
        self.locals.get(x as usize).ok_or_else(|| {
            WasmError::malformed(
                at,
                format!("local index {x} out of range ({} locals)", self.locals.len()),
            )
        })
    }

    fn store_local(&mut self, at: usize, x: u32, v: Value) -> Result<(), WasmError> {
        match self.local(at, x)? {
            Slot::Stack { ptr } => {
                let p = *ptr;
                self.b.store(v, p);
                Ok(())
            }
            Slot::Direct(_) => Err(WasmError::malformed(
                at,
                format!("local.set to local {x}, which the pre-scan saw no writes to"),
            )),
        }
    }

    // ----- stack & conditions -----------------------------------------------

    fn pop(&mut self, at: usize, what: &str) -> Result<Value, WasmError> {
        let height = self.ctrl.last().map_or(0, |f| f.stack_height);
        if self.stack.len() <= height {
            return Err(WasmError::malformed(at, format!("operand stack underflow for {what}")));
        }
        Ok(self.stack.pop().expect("checked above"))
    }

    fn peek(&mut self, at: usize, what: &str) -> Result<Value, WasmError> {
        let v = self.pop(at, what)?;
        self.stack.push(v);
        Ok(v)
    }

    /// Pushes a comparison result: wasm's booleans are `i32` 0/1, so the
    /// `i1` is widened — and remembered, so a later consumer that only
    /// needs the condition gets the original `i1` back.
    fn push_bool(&mut self, i1: Value) {
        let i32t = self.b.module().types.i32();
        let widened = self.b.zext(i1, i32t);
        self.bools.insert(widened, i1);
        self.stack.push(widened);
    }

    /// Pops an `i32` condition and converts it to `i1` (`!= 0`), folding
    /// the widening away when the value came straight from a comparison.
    fn pop_condition(&mut self, at: usize) -> Result<Value, WasmError> {
        let v = self.pop(at, "condition")?;
        if let Some(&i1) = self.bools.get(&v) {
            return Ok(i1);
        }
        let i32t = self.b.module().types.i32();
        Ok(self.b.icmp(IntPredicate::Ne, v, Value::ConstInt { ty: i32t, bits: 0 }))
    }

    fn zero_of(&self, vt: ValType) -> Value {
        let ty = vt_ty(self.b.module(), vt);
        match vt {
            ValType::I32 | ValType::I64 => Value::ConstInt { ty, bits: 0 },
            ValType::F32 | ValType::F64 => Value::ConstFloat { ty, bits: 0 },
        }
    }

    // ----- memory -----------------------------------------------------------

    /// `zext` the dynamic `i32` address to `i64`, add the constant offset
    /// (wasm's effective address is a 33-bit sum), and `gep` from the
    /// memory base through `i8` to a pointer to the access type.
    fn effective_ptr(&mut self, at: usize, offset: u32, access: TyId) -> Result<Value, WasmError> {
        if !self.has_memory {
            return Err(WasmError::malformed(
                at,
                "memory access in a module with no memory section",
            ));
        }
        let addr32 = self.pop(at, "memory address")?;
        let i64t = self.b.module().types.i64();
        let mut addr = self.b.zext(addr32, i64t);
        if offset != 0 {
            addr = self.b.add(addr, Value::ConstInt { ty: i64t, bits: offset as u64 });
        }
        let i8t = self.b.module().types.i8();
        Ok(self.b.gep(i8t, Value::Param(0), vec![addr], access))
    }

    fn lower_load(&mut self, at: usize, arg: MemArg) -> Result<Value, WasmError> {
        let value_ty = vt_ty(self.b.module(), arg.ty);
        let access_ty = self.access_ty(arg);
        let ptr = self.effective_ptr(at, arg.offset, access_ty)?;
        let raw = self.b.load(ptr);
        if access_ty == value_ty {
            return Ok(raw);
        }
        Ok(if arg.signed { self.b.sext(raw, value_ty) } else { self.b.zext(raw, value_ty) })
    }

    fn lower_store(&mut self, at: usize, arg: MemArg) -> Result<(), WasmError> {
        let value_ty = vt_ty(self.b.module(), arg.ty);
        let access_ty = self.access_ty(arg);
        let mut v = self.pop(at, "store value")?;
        if access_ty != value_ty {
            v = self.b.trunc(v, access_ty);
        }
        let ptr = self.effective_ptr(at, arg.offset, access_ty)?;
        self.b.store(v, ptr);
        Ok(())
    }

    fn access_ty(&self, arg: MemArg) -> TyId {
        match (arg.ty, arg.width) {
            (ValType::F32, _) => self.b.module().types.f32(),
            (ValType::F64, _) => self.b.module().types.f64(),
            (_, 8) => self.b.module().types.i8(),
            (_, 16) => self.b.module().types.i16(),
            (_, 32) => self.b.module().types.i32(),
            _ => self.b.module().types.i64(),
        }
    }
}
