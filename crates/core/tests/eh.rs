//! Exception-handling merge tests (§III-D/§III-E landing-pad rules):
//! merging functions with `invoke`/`landingpad`, including the
//! landing-pad *hoisting* path where matched invokes target different
//! landing blocks and the selector block must become a landing pad
//! itself.

use fmsa_core::merge::{merge_pair, MergeConfig};
use fmsa_core::thunks::commit_merge;
use fmsa_interp::{execute, Val};
use fmsa_ir::{FuncBuilder, IntPredicate, LandingPadClause, Linkage, Module, Opcode, Value};

/// Module with a host `thrower(i64)` that unwinds when its argument is
/// non-zero (wired to the default `throw_exn` host by name aliasing).
fn module_with_thrower() -> (Module, fmsa_ir::FuncId) {
    let mut m = Module::new("eh");
    let i64t = m.types.i64();
    let void = m.types.void();
    let throw_ty = m.types.func(void, vec![i64t]);
    let thrower = m.create_function("throw_exn", throw_ty);
    (m, thrower)
}

#[test]
fn identical_eh_functions_merge_and_behave() {
    let (mut m, thrower) = module_with_thrower();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    for name in ["try_a", "try_b"] {
        let fn_ty = m.types.func(i32t, vec![i64t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let normal = b.block("normal");
        let lpad = b.block("lpad");
        b.switch_to(entry);
        b.invoke(thrower, vec![Value::Param(0)], normal, lpad);
        b.switch_to(normal);
        b.ret(Some(b.const_i32(0)));
        b.switch_to(lpad);
        b.landingpad(vec![LandingPadClause::Catch("any".into())], false);
        b.ret(Some(b.const_i32(1)));
    }
    assert!(fmsa_ir::verify_module(&m).is_empty());
    let f1 = m.func_by_name("try_a").expect("exists");
    let f2 = m.func_by_name("try_b").expect("exists");
    m.func_mut(f1).linkage = Linkage::External;
    m.func_mut(f2).linkage = Linkage::External;
    let before: Vec<_> = [0i64, 5]
        .iter()
        .map(|&x| execute(&m, "try_a", vec![Val::i64(x)]).expect("runs").value)
        .collect();
    let info = merge_pair(&mut m, f1, f2, &MergeConfig::default()).expect("merges");
    assert!(!info.has_func_id, "identical functions need no identifier");
    commit_merge(&mut m, &info).expect("commit");
    assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    for (k, &x) in [0i64, 5].iter().enumerate() {
        for name in ["try_a", "try_b"] {
            let got = execute(&m, name, vec![Val::i64(x)]).expect("runs").value;
            assert_eq!(got, before[k], "{name}({x})");
        }
    }
}

#[test]
fn eh_functions_with_different_handlers_merge() {
    // Same invoke shape, but the landing blocks do different things
    // (return -1 vs return -2): pads are identical (required), handler
    // code diverges.
    let (mut m, thrower) = module_with_thrower();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    for (name, code) in [("h_a", -1), ("h_b", -2)] {
        let fn_ty = m.types.func(i32t, vec![i64t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let normal = b.block("normal");
        let lpad = b.block("lpad");
        b.switch_to(entry);
        b.invoke(thrower, vec![Value::Param(0)], normal, lpad);
        b.switch_to(normal);
        b.ret(Some(b.const_i32(0)));
        b.switch_to(lpad);
        b.landingpad(vec![LandingPadClause::Catch("any".into())], false);
        // Handler bodies differ beyond a single constant.
        if code == -1 {
            b.ret(Some(b.const_i32(code)));
        } else {
            let v = b.add(b.const_i32(code), b.const_i32(0));
            let w = b.mul(v, b.const_i32(3));
            b.ret(Some(w));
        }
    }
    let f1 = m.func_by_name("h_a").expect("exists");
    let f2 = m.func_by_name("h_b").expect("exists");
    m.func_mut(f1).linkage = Linkage::External;
    m.func_mut(f2).linkage = Linkage::External;
    let expect: Vec<_> = ["h_a", "h_b"]
        .iter()
        .flat_map(|name| {
            [0i64, 7].map(|x| {
                ((name.to_string(), x), execute(&m, name, vec![Val::i64(x)]).expect("runs").value)
            })
        })
        .collect();
    let info = merge_pair(&mut m, f1, f2, &MergeConfig::default()).expect("merges");
    commit_merge(&mut m, &info).expect("commit");
    let errs = fmsa_ir::verify_module(&m);
    assert!(errs.is_empty(), "{errs:?}");
    for ((name, x), want) in expect {
        let got = execute(&m, &name, vec![Val::i64(x)]).expect("runs").value;
        assert_eq!(got, want, "{name}({x})");
    }
}

#[test]
fn mismatched_pads_do_not_merge_invokes() {
    // Different clause lists: the invokes must not be treated as
    // equivalent (§III-D), so they end up in divergent regions.
    let (mut m, thrower) = module_with_thrower();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    for (name, clause) in [("ca", "TypeA"), ("cb", "TypeB")] {
        let fn_ty = m.types.func(i32t, vec![i64t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let normal = b.block("normal");
        let lpad = b.block("lpad");
        b.switch_to(entry);
        b.invoke(thrower, vec![Value::Param(0)], normal, lpad);
        b.switch_to(normal);
        b.ret(Some(b.const_i32(0)));
        b.switch_to(lpad);
        b.landingpad(vec![LandingPadClause::Catch(clause.into())], false);
        b.ret(Some(b.const_i32(1)));
    }
    let f1 = m.func_by_name("ca").expect("exists");
    let f2 = m.func_by_name("cb").expect("exists");
    let info = merge_pair(&mut m, f1, f2, &MergeConfig::default()).expect("merge builds");
    // The merged function exists, but the invokes were not matched.
    let mf = m.func(info.merged);
    let invokes = mf.inst_ids().iter().filter(|&&i| mf.inst(i).opcode == Opcode::Invoke).count();
    assert_eq!(invokes, 2, "each side keeps its own invoke");
    assert!(fmsa_ir::verify_function(&m, info.merged).is_empty());
}

#[test]
fn resume_propagates_through_merged_function() {
    // Handlers that clean up and re-raise: `resume` in merged code.
    let (mut m, thrower) = module_with_thrower();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    for (name, k) in [("ra", 2), ("rb", 3)] {
        let fn_ty = m.types.func(i32t, vec![i64t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let normal = b.block("normal");
        let lpad = b.block("lpad");
        b.switch_to(entry);
        b.invoke(thrower, vec![Value::Param(0)], normal, lpad);
        b.switch_to(normal);
        b.ret(Some(b.const_i32(k)));
        b.switch_to(lpad);
        let pad = b.landingpad(vec![], true);
        b.resume(pad);
    }
    let f1 = m.func_by_name("ra").expect("exists");
    let f2 = m.func_by_name("rb").expect("exists");
    m.func_mut(f1).linkage = Linkage::External;
    m.func_mut(f2).linkage = Linkage::External;
    let info = merge_pair(&mut m, f1, f2, &MergeConfig::default()).expect("merges");
    commit_merge(&mut m, &info).expect("commit");
    assert!(fmsa_ir::verify_module(&m).is_empty());
    // Normal path returns the per-function constant; throwing path
    // propagates as an uncaught exception.
    assert_eq!(execute(&m, "ra", vec![Val::i64(0)]).expect("runs").value, Some(Val::i32(2)));
    assert_eq!(execute(&m, "rb", vec![Val::i64(0)]).expect("runs").value, Some(Val::i32(3)));
    assert!(execute(&m, "ra", vec![Val::i64(9)]).is_err(), "exception re-raised");
}

#[test]
fn guarded_eh_region_only_in_one_function() {
    // One function body is EH-free; the other wraps the same computation
    // in a try block. FMSA must still merge the shared tail.
    let (mut m, thrower) = module_with_thrower();
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    let shared_tail = |b: &mut FuncBuilder<'_>| {
        let mut v = Value::Param(1);
        for k in 0..8 {
            v = b.add(v, b.const_i32(k));
            v = b.xor(v, b.const_i32(5));
        }
        v
    };
    {
        let fn_ty = m.types.func(i32t, vec![i64t, i32t]);
        let f = m.create_function("plain", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let v = shared_tail(&mut b);
        b.ret(Some(v));
    }
    {
        let fn_ty = m.types.func(i32t, vec![i64t, i32t]);
        let f = m.create_function("guarded", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let do_try = b.block("do_try");
        let normal = b.block("normal");
        let lpad = b.block("lpad");
        b.switch_to(entry);
        let nz = b.icmp(IntPredicate::Ne, Value::Param(0), b.const_i64(0));
        b.condbr(nz, do_try, normal);
        b.switch_to(do_try);
        b.invoke(thrower, vec![Value::Param(0)], normal, lpad);
        b.switch_to(lpad);
        b.landingpad(vec![LandingPadClause::Catch("any".into())], false);
        b.ret(Some(b.const_i32(-99)));
        b.switch_to(normal);
        let v = shared_tail(&mut b);
        b.ret(Some(v));
    }
    let f1 = m.func_by_name("plain").expect("exists");
    let f2 = m.func_by_name("guarded").expect("exists");
    m.func_mut(f1).linkage = Linkage::External;
    m.func_mut(f2).linkage = Linkage::External;
    let info = merge_pair(&mut m, f1, f2, &MergeConfig::default()).expect("merges");
    assert!(info.matches >= 10, "shared tail must align: {info:?}");
    commit_merge(&mut m, &info).expect("commit");
    assert!(fmsa_ir::verify_module(&m).is_empty());
    // plain(_, x) computes the tail; guarded(0, x) takes the normal path.
    let p = execute(&m, "plain", vec![Val::i64(0), Val::i32(10)]).expect("runs").value;
    let g = execute(&m, "guarded", vec![Val::i64(0), Val::i32(10)]).expect("runs").value;
    assert_eq!(p, g, "same tail computation");
    // guarded(9, x) throws and lands in the handler.
    let h = execute(&m, "guarded", vec![Val::i64(9), Val::i32(10)]).expect("runs").value;
    assert_eq!(h, Some(Val::i32(-99)));
}
