//! Alignment-algorithm interchangeability (§III-C: "Different alignments
//! would produce different but valid merged functions"): merging with
//! Hirschberg instead of Needleman-Wunsch must still produce valid,
//! behaviour-preserving code of comparable quality.

use fmsa_core::merge::{merge_pair, AlignAlgo, MergeConfig};
use fmsa_core::thunks::commit_merge;
use fmsa_interp::{Interpreter, Val};
use fmsa_ir::{Linkage, Module};
use fmsa_workloads::{generate_function, GenConfig, Variant};

fn build_pair(seed: u64, variant: &Variant) -> (Module, fmsa_ir::FuncId, fmsa_ir::FuncId) {
    let mut m = Module::new("algo");
    let cfg = GenConfig { target_size: 60, ..GenConfig::default() };
    let fa = generate_function(&mut m, "fa", seed, &cfg, &Variant::exact());
    let fb = generate_function(&mut m, "fb", seed, &cfg, variant);
    m.func_mut(fa).linkage = Linkage::External;
    m.func_mut(fb).linkage = Linkage::External;
    (m, fa, fb)
}

fn args_for(m: &Module, name: &str) -> Vec<Val> {
    let f = m.func_by_name(name).expect("exists");
    m.func(f)
        .params()
        .iter()
        .map(|p| {
            if m.types.is_float(p.ty) {
                if m.types.display(p.ty) == "float" {
                    Val::F32(2.5)
                } else {
                    Val::F64(2.5)
                }
            } else if m.types.int_width(p.ty) == Some(64) {
                Val::i64(6)
            } else {
                Val::i32(6)
            }
        })
        .collect()
}

#[test]
fn hirschberg_merge_is_valid_and_equivalent() {
    for seed in [3u64, 17, 99] {
        for variant in [Variant::body(7), Variant::cfg(2)] {
            let (m, fa, fb) = build_pair(seed, &variant);
            let before_a = Interpreter::new(&m).run("fa", args_for(&m, "fa")).expect("runs");
            let before_b = Interpreter::new(&m).run("fb", args_for(&m, "fb")).expect("runs");
            let mut merged = m.clone();
            let config = MergeConfig { algorithm: AlignAlgo::Hirschberg, ..MergeConfig::default() };
            let info = merge_pair(&mut merged, fa, fb, &config).expect("hirschberg merges");
            commit_merge(&mut merged, &info).expect("commit");
            let errs = fmsa_ir::verify_module(&merged);
            assert!(errs.is_empty(), "seed {seed}: {errs:?}");
            let after_a =
                Interpreter::new(&merged).run("fa", args_for(&merged, "fa")).expect("runs");
            let after_b =
                Interpreter::new(&merged).run("fb", args_for(&merged, "fb")).expect("runs");
            assert_eq!(before_a.value, after_a.value, "seed {seed} fa");
            assert_eq!(before_b.value, after_b.value, "seed {seed} fb");
        }
    }
}

#[test]
fn algorithms_find_comparable_similarity() {
    // Hirschberg's alignment is co-optimal with Needleman-Wunsch, so the
    // match counts must be close (identical scores, possibly different
    // tie-breaking).
    let (mut m, fa, fb) = build_pair(42, &Variant::body(11));
    let nw = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("nw merges");
    let nw_matches = nw.matches;
    m.remove_function(nw.merged);
    let config = MergeConfig { algorithm: AlignAlgo::Hirschberg, ..MergeConfig::default() };
    let h = merge_pair(&mut m, fa, fb, &config).expect("hirschberg merges");
    let diff = (nw_matches as i64 - h.matches as i64).abs();
    assert!(
        diff <= nw_matches as i64 / 10 + 2,
        "match counts should be comparable: nw={nw_matches} hirschberg={}",
        h.matches
    );
}
