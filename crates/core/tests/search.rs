//! Property tests for the candidate-search subsystem: on random clone-swarm
//! modules, LSH shortlisting must retain most of the exact search's merging
//! power, and both strategies must be run-to-run deterministic.

use fmsa_core::pass::{run_fmsa, FmsaStats};
use fmsa_core::Config;
use fmsa_core::SearchStrategy;
use fmsa_ir::Module;
use fmsa_workloads::{clone_swarm_module, SwarmConfig};
use proptest::prelude::*;

fn swarm(seed: u64, functions: usize) -> Module {
    clone_swarm_module(&SwarmConfig { functions, seed, ..SwarmConfig::default() })
}

fn run(m: &Module, search: SearchStrategy) -> (FmsaStats, String) {
    let mut m = m.clone();
    let cfg = Config::new().threshold(5).search(search);
    let stats = run_fmsa(&mut m, &cfg.fmsa_options());
    let errs = fmsa_ir::verify_module(&m);
    assert!(errs.is_empty(), "invalid module after pass: {errs:?}");
    (stats, fmsa_ir::printer::print_module(&m))
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 8, ..ProptestConfig::default() })]

    #[test]
    fn lsh_tracks_exact_search(seed in 0u64..10_000, functions in 24usize..64) {
        let m = swarm(seed, functions);
        let (exact, _) = run(&m, SearchStrategy::Exact);
        let (lsh, _) = run(&m, SearchStrategy::lsh());

        // The LSH shortlist must find at least half of the merges the
        // exhaustive scan commits (on clone swarms it typically finds all
        // of them — family members are near-duplicates, the regime LSH
        // recalls best).
        prop_assert!(
            lsh.merges * 2 >= exact.merges,
            "lsh found {} of {} exact merges (seed={seed}, n={functions})",
            lsh.merges,
            exact.merges
        );

        // And retain at least half of the exact size reduction.
        let exact_saved = exact.size_before.saturating_sub(exact.size_after);
        let lsh_saved = lsh.size_before.saturating_sub(lsh.size_after);
        prop_assert!(
            lsh_saved * 2 >= exact_saved,
            "lsh saved {lsh_saved} of {exact_saved} bytes (seed={seed}, n={functions})"
        );
    }

    #[test]
    fn both_strategies_are_deterministic(seed in 0u64..10_000) {
        let m = swarm(seed, 32);
        for strategy in [SearchStrategy::Exact, SearchStrategy::lsh()] {
            let (s1, out1) = run(&m, strategy);
            let (s2, out2) = run(&m, strategy);
            prop_assert_eq!(s1.merges, s2.merges, "merges differ for {:?}", strategy);
            prop_assert_eq!(s1.size_after, s2.size_after, "sizes differ for {:?}", strategy);
            prop_assert_eq!(
                s1.rank_positions.clone(),
                s2.rank_positions.clone(),
                "rank positions differ for {:?}",
                strategy
            );
            prop_assert!(out1 == out2, "printed modules differ for {strategy:?}");
        }
    }
}
