//! The future-work extension end to end: canonical instruction reordering
//! (paper §VII — "allowing instruction reordering to maximize the number
//! of matches") lets FMSA fully align clones whose blocks compute the same
//! operations in a different textual order.

use fmsa_core::merge::{merge_pair, MergeConfig};
use fmsa_core::pass::run_fmsa;
use fmsa_core::Config;
use fmsa_interp::{Interpreter, Val};
use fmsa_ir::{passes, Linkage, Module};
use fmsa_workloads::{generate_function, GenConfig, Variant};

/// Builds an exact clone pair, then legally permutes one side's
/// instruction order by running the canonicalizer on it (any
/// dependency-respecting permutation is a valid scramble).
fn reordered_pair() -> (Module, fmsa_ir::FuncId, fmsa_ir::FuncId) {
    let mut m = Module::new("reorder");
    let cfg = GenConfig { target_size: 60, branchiness: 10, ..GenConfig::default() };
    let fa = generate_function(&mut m, "fa", 555, &cfg, &Variant::exact());
    let fb = generate_function(&mut m, "fb", 555, &cfg, &Variant::exact());
    // Scramble fb: the canonical order is a legal but different order.
    let changed = passes::canonicalize_block_order(m.func_mut(fb));
    assert!(changed > 0, "scramble must change something");
    assert!(fmsa_ir::verify_module(&m).is_empty());
    (m, fa, fb)
}

fn args_for(m: &Module, name: &str) -> Vec<Val> {
    let f = m.func_by_name(name).expect("exists");
    m.func(f)
        .params()
        .iter()
        .map(|p| {
            if m.types.is_float(p.ty) {
                if m.types.display(p.ty) == "float" {
                    Val::F32(1.25)
                } else {
                    Val::F64(1.25)
                }
            } else if m.types.int_width(p.ty) == Some(64) {
                Val::i64(9)
            } else {
                Val::i32(9)
            }
        })
        .collect()
}

#[test]
fn scrambling_preserves_behaviour() {
    let (m, _, _) = reordered_pair();
    let a = Interpreter::new(&m).run("fa", args_for(&m, "fa")).expect("fa runs");
    let b = Interpreter::new(&m).run("fb", args_for(&m, "fb")).expect("fb runs");
    match (&a.value, &b.value) {
        (Some(x), Some(y)) => assert!(x.bit_eq(y), "{a:?} vs {b:?}"),
        (None, None) => {}
        _ => panic!("{a:?} vs {b:?}"),
    }
}

#[test]
fn canonicalization_recovers_matches() {
    let (m, fa, fb) = reordered_pair();
    // Without canonicalization: the reordered body costs matches.
    let mut plain = m.clone();
    let info_plain = merge_pair(&mut plain, fa, fb, &MergeConfig::default()).expect("plain merges");
    // With canonicalization applied to both sides first.
    let mut canon = m.clone();
    passes::canonicalize_block_order(canon.func_mut(fa));
    passes::canonicalize_block_order(canon.func_mut(fb));
    let info_canon = merge_pair(&mut canon, fa, fb, &MergeConfig::default()).expect("canon merges");
    assert!(
        info_canon.matches > info_plain.matches,
        "canonicalization should recover matches: {} vs {}",
        info_canon.matches,
        info_plain.matches
    );
    assert_eq!(
        info_canon.matches, info_canon.alignment_len,
        "canonicalized exact clones align perfectly"
    );
}

#[test]
fn pass_option_merges_reordered_clones_and_preserves_behaviour() {
    let (mut m, fa, fb) = reordered_pair();
    m.func_mut(fa).linkage = Linkage::External;
    m.func_mut(fb).linkage = Linkage::External;
    let before_a = Interpreter::new(&m).run("fa", args_for(&m, "fa")).expect("runs");
    let cfg = Config::new().threshold(5).canonicalize(true);
    let stats = run_fmsa(&mut m, &cfg.fmsa_options());
    assert_eq!(stats.merges, 1, "{stats:?}");
    assert!(fmsa_ir::verify_module(&m).is_empty());
    let after_a = Interpreter::new(&m).run("fa", args_for(&m, "fa")).expect("runs");
    match (&before_a.value, &after_a.value) {
        (Some(x), Some(y)) => assert!(x.bit_eq(y)),
        (None, None) => {}
        _ => panic!("{before_a:?} vs {after_a:?}"),
    }
}
