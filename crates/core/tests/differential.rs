//! Differential correctness tests: for every merging scenario of §III-E
//! ("identical functions, functions with differing bodies, ... different
//! parameter lists, ... different return types, and any combination"),
//! merge a pair, then check that calling the retired originals (as thunks
//! or through rewritten call sites) behaves bit-identically to the
//! pre-merge module on a grid of inputs.

use fmsa_core::merge::{merge_pair, MergeConfig};
use fmsa_core::thunks::commit_merge;
use fmsa_interp::{execute, Val};
use fmsa_ir::{FuncBuilder, FuncId, IntPredicate, Linkage, Module, Value};

/// Merges `f1`/`f2` in a clone of `module`, commits with thunks (external
/// linkage so both originals stay callable), and compares `name(args)`
/// behaviour before and after.
fn assert_equivalent_after_merge(module: &Module, names: [&str; 2], inputs: &[Vec<Val>]) {
    let mut merged_mod = module.clone();
    let f1 = merged_mod.func_by_name(names[0]).expect("f1 exists");
    let f2 = merged_mod.func_by_name(names[1]).expect("f2 exists");
    // Keep the originals callable as thunks.
    merged_mod.func_mut(f1).linkage = Linkage::External;
    merged_mod.func_mut(f2).linkage = Linkage::External;
    let info =
        merge_pair(&mut merged_mod, f1, f2, &MergeConfig::default()).expect("pair should merge");
    commit_merge(&mut merged_mod, &info).expect("commit succeeds");
    let errs = fmsa_ir::verify_module(&merged_mod);
    assert!(errs.is_empty(), "merged module invalid: {errs:?}");
    for name in names {
        for args in inputs {
            let before = execute(module, name, args.clone());
            let after = execute(&merged_mod, name, args.clone());
            match (&before, &after) {
                (Ok(b), Ok(a)) => {
                    let vals_eq = match (&b.value, &a.value) {
                        (Some(x), Some(y)) => x.bit_eq(y),
                        (None, None) => true,
                        _ => false,
                    };
                    assert!(
                        vals_eq && b.output == a.output,
                        "{name}({args:?}): before={b:?} after={a:?}"
                    );
                }
                (Err(b), Err(a)) => assert_eq!(b, a, "{name}({args:?}) traps differ"),
                _ => panic!("{name}({args:?}): before={before:?} after={after:?}"),
            }
        }
    }
}

fn i32_inputs() -> Vec<Vec<Val>> {
    [-7, -1, 0, 1, 5, 42, 1000].iter().map(|&x| vec![Val::i32(x)]).collect()
}

#[test]
fn identical_functions() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for name in ["ida", "idb"] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = b.mul(Value::Param(0), b.const_i32(3));
        let w = b.add(v, b.const_i32(11));
        b.ret(Some(w));
    }
    assert_equivalent_after_merge(&m, ["ida", "idb"], &i32_inputs());
}

#[test]
fn differing_constant() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for (name, c) in [("ca", 5), ("cb", 9)] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for k in 0..6 {
            v = b.add(v, b.const_i32(k));
            v = b.xor(v, b.const_i32(3));
        }
        let w = b.mul(v, b.const_i32(c));
        b.ret(Some(w));
    }
    assert_equivalent_after_merge(&m, ["ca", "cb"], &i32_inputs());
}

/// Fig. 1 analogue: same body except the stored type (f32 vs f64) and a
/// different parameter list.
#[test]
fn sphinx_style_type_variants() {
    let mut m = Module::new("m");
    let i64t = m.types.i64();
    let f32t = m.types.f32();
    let f64t = m.types.f64();
    let p8 = m.types.ptr(m.types.i8());
    let malloc_ty = m.types.func(p8, vec![i64t]);
    let malloc = m.create_function("mymalloc", malloc_ty);
    // glist_add_float32(val: f32) -> i64 (returns the node address)
    {
        let p32 = m.types.ptr(f32t);
        let fn_ty = m.types.func(i64t, vec![f32t]);
        let f = m.create_function("glist_add_float32", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let raw = b.call(malloc, vec![b.const_i64(16)]);
        let slot = b.bitcast(raw, p32);
        b.store(Value::Param(0), slot);
        let addr = b.cast(fmsa_ir::Opcode::PtrToInt, raw, i64t);
        b.ret(Some(addr));
    }
    // glist_add_float64(val: f64) -> i64
    {
        let p64 = m.types.ptr(f64t);
        let fn_ty = m.types.func(i64t, vec![f64t]);
        let f = m.create_function("glist_add_float64", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let raw = b.call(malloc, vec![b.const_i64(16)]);
        let slot = b.bitcast(raw, p64);
        b.store(Value::Param(0), slot);
        let addr = b.cast(fmsa_ir::Opcode::PtrToInt, raw, i64t);
        b.ret(Some(addr));
    }
    let inputs32 = vec![vec![Val::F32(1.5)], vec![Val::F32(-0.25)]];
    let inputs64 = vec![vec![Val::F64(2.75)], vec![Val::F64(1e9)]];
    // Run each function on its own inputs.
    let mut merged_mod = m.clone();
    let f1 = merged_mod.func_by_name("glist_add_float32").expect("exists");
    let f2 = merged_mod.func_by_name("glist_add_float64").expect("exists");
    merged_mod.func_mut(f1).linkage = Linkage::External;
    merged_mod.func_mut(f2).linkage = Linkage::External;
    let info =
        merge_pair(&mut merged_mod, f1, f2, &MergeConfig::default()).expect("pair should merge");
    assert!(info.has_func_id, "bodies store through different widths");
    commit_merge(&mut merged_mod, &info).expect("commit succeeds");
    assert!(fmsa_ir::verify_module(&merged_mod).is_empty());
    for (name, inputs) in [("glist_add_float32", &inputs32), ("glist_add_float64", &inputs64)] {
        for args in inputs {
            let before = execute(&m, name, args.clone()).expect("original runs");
            let after = execute(&merged_mod, name, args.clone()).expect("merged runs");
            assert_eq!(before.value, after.value, "{name}({args:?})");
        }
    }
}

/// Fig. 2 analogue: one function has an extra guarded early-exit block —
/// different CFGs, same signature.
#[test]
fn libquantum_style_extra_block() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
    // Common tail: loop-free computation over both params.
    let build_tail = |b: &mut FuncBuilder<'_>, sign: i32| {
        let mut v = Value::Param(0);
        for k in 1..6 {
            v = b.mul(v, Value::Param(1));
            v = b.add(v, b.const_i32(k * sign));
        }
        v
    };
    {
        let f = m.create_function("cond_phase_inv", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = build_tail(&mut b, -1);
        b.ret(Some(v));
    }
    {
        let f = m.create_function("cond_phase", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        let early = b.block("early");
        let cont = b.block("cont");
        b.switch_to(e);
        let zero = b.icmp(IntPredicate::Eq, Value::Param(0), b.const_i32(0));
        b.condbr(zero, early, cont);
        b.switch_to(early);
        b.ret(Some(b.const_i32(-1)));
        b.switch_to(cont);
        let v = build_tail(&mut b, 1);
        b.ret(Some(v));
    }
    let inputs: Vec<Vec<Val>> = [(0, 0), (1, 2), (3, -4), (7, 7), (100, 3)]
        .iter()
        .map(|&(a, b)| vec![Val::i32(a), Val::i32(b)])
        .collect();
    assert_equivalent_after_merge(&m, ["cond_phase_inv", "cond_phase"], &inputs);
}

#[test]
fn different_return_types() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let i64t = m.types.i64();
    {
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("r32", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for k in 0..5 {
            v = b.add(v, b.const_i32(k));
            v = b.mul(v, b.const_i32(3));
        }
        b.ret(Some(v));
    }
    {
        let fn_ty = m.types.func(i64t, vec![i32t]);
        let f = m.create_function("r64", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for k in 0..5 {
            v = b.add(v, b.const_i32(k));
            v = b.mul(v, b.const_i32(3));
        }
        let w = b.sext(v, i64t);
        b.ret(Some(w));
    }
    assert_equivalent_after_merge(&m, ["r32", "r64"], &i32_inputs());
}

#[test]
fn void_and_value_returning() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let void = m.types.void();
    let print_ty = m.types.func(void, vec![i32t]);
    let print = m.create_function("print_i32", print_ty);
    {
        let fn_ty = m.types.func(void, vec![i32t]);
        let f = m.create_function("log_it", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = b.mul(Value::Param(0), b.const_i32(2));
        b.call(print, vec![v]);
        b.ret(None);
    }
    {
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("log_and_get", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = b.mul(Value::Param(0), b.const_i32(2));
        b.call(print, vec![v]);
        b.ret(Some(v));
    }
    assert_equivalent_after_merge(&m, ["log_it", "log_and_get"], &i32_inputs());
}

#[test]
fn different_parameter_orders() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let f64t = m.types.f64();
    {
        let fn_ty = m.types.func(f64t, vec![i32t, f64t]);
        let f = m.create_function("mix_a", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.sitofp(Value::Param(0), f64t);
        let y = b.fmul(x, Value::Param(1));
        let z = b.fadd(y, b.const_f64(1.0));
        b.ret(Some(z));
    }
    {
        let fn_ty = m.types.func(f64t, vec![f64t, i32t]);
        let f = m.create_function("mix_b", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.sitofp(Value::Param(1), f64t);
        let y = b.fmul(x, Value::Param(0));
        let z = b.fadd(y, b.const_f64(1.0));
        b.ret(Some(z));
    }
    let inputs_a = vec![vec![Val::i32(3), Val::F64(2.5)], vec![Val::i32(-1), Val::F64(0.5)]];
    let inputs_b = vec![vec![Val::F64(2.5), Val::i32(3)], vec![Val::F64(0.5), Val::i32(-1)]];
    let mut merged_mod = m.clone();
    let f1 = merged_mod.func_by_name("mix_a").expect("exists");
    let f2 = merged_mod.func_by_name("mix_b").expect("exists");
    merged_mod.func_mut(f1).linkage = Linkage::External;
    merged_mod.func_mut(f2).linkage = Linkage::External;
    let info =
        merge_pair(&mut merged_mod, f1, f2, &MergeConfig::default()).expect("pair should merge");
    commit_merge(&mut merged_mod, &info).expect("commit succeeds");
    assert!(fmsa_ir::verify_module(&merged_mod).is_empty());
    for (name, inputs) in [("mix_a", &inputs_a), ("mix_b", &inputs_b)] {
        for args in inputs {
            let before = execute(&m, name, args.clone()).expect("original runs");
            let after = execute(&merged_mod, name, args.clone()).expect("merged runs");
            assert!(
                before.value.as_ref().unwrap().bit_eq(after.value.as_ref().unwrap()),
                "{name}({args:?}): {before:?} vs {after:?}"
            );
        }
    }
}

#[test]
fn loops_with_differing_bodies() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for (name, step) in [("sum_up", 1), ("sum_up2", 2)] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        let header = b.block("header");
        let body = b.block("body");
        let exit = b.block("exit");
        b.switch_to(e);
        let acc = b.alloca(i32t);
        let i = b.alloca(i32t);
        b.store(b.const_i32(0), acc);
        b.store(b.const_i32(0), i);
        b.br(header);
        b.switch_to(header);
        let iv = b.load(i);
        let c = b.icmp(IntPredicate::Slt, iv, Value::Param(0));
        b.condbr(c, body, exit);
        b.switch_to(body);
        let av = b.load(acc);
        let sum = b.add(av, iv);
        b.store(sum, acc);
        let inc = b.add(iv, b.const_i32(step));
        b.store(inc, i);
        b.br(header);
        b.switch_to(exit);
        let r = b.load(acc);
        b.ret(Some(r));
    }
    let inputs: Vec<Vec<Val>> = [0, 1, 5, 10, 33].iter().map(|&x| vec![Val::i32(x)]).collect();
    assert_equivalent_after_merge(&m, ["sum_up", "sum_up2"], &inputs);
}

#[test]
fn call_sites_rewritten_when_deletable() {
    // Internal originals get deleted; a caller must transparently use the
    // merged function.
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for (name, c) in [("wa", 3), ("wb", 4)] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for k in 0..6 {
            v = b.mul(v, b.const_i32(k + 2));
            v = b.xor(v, b.const_i32(c));
        }
        b.ret(Some(v));
    }
    let main_ty = m.types.func(i32t, vec![i32t]);
    let main = m.create_function("main", main_ty);
    {
        let wa = m.func_by_name("wa").expect("exists");
        let wb = m.func_by_name("wb").expect("exists");
        let mut b = FuncBuilder::new(&mut m, main);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.call(wa, vec![Value::Param(0)]);
        let y = b.call(wb, vec![x]);
        b.ret(Some(y));
    }
    let before: Vec<_> =
        i32_inputs().iter().map(|args| execute(&m, "main", args.clone()).expect("runs")).collect();
    let wa = m.func_by_name("wa").expect("exists");
    let wb = m.func_by_name("wb").expect("exists");
    let info = merge_pair(&mut m, wa, wb, &MergeConfig::default()).expect("pair should merge");
    let commit = commit_merge(&mut m, &info).expect("commit succeeds");
    assert_eq!(commit.first, fmsa_core::thunks::Disposition::Deleted);
    assert_eq!(commit.second, fmsa_core::thunks::Disposition::Deleted);
    assert!(!m.is_live(wa) && !m.is_live(wb));
    assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    for (args, exp) in i32_inputs().iter().zip(before) {
        let after = execute(&m, "main", args.clone()).expect("runs");
        assert_eq!(after.value, exp.value, "main({args:?})");
    }
}

#[test]
fn recursive_functions_merge() {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    // Two recursive functions with the same shape but different base value.
    for (name, base) in [("reca", 1), ("recb", 2)] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        let stop = b.block("stop");
        let go = b.block("go");
        b.switch_to(e);
        let c = b.icmp(IntPredicate::Sle, Value::Param(0), b.const_i32(0));
        b.condbr(c, stop, go);
        b.switch_to(stop);
        b.ret(Some(b.const_i32(base)));
        b.switch_to(go);
        let n1 = b.sub(Value::Param(0), b.const_i32(1));
        let r = b.call(f, vec![n1]);
        let s = b.add(r, Value::Param(0));
        b.ret(Some(s));
    }
    // NOTE: recursive self-calls differ (reca calls reca, recb calls recb)
    // so those call instructions land in divergent chains; after deletion
    // the chains call the merged function via rewritten call sites.
    let inputs: Vec<Vec<Val>> = [0, 1, 2, 5, 9].iter().map(|&x| vec![Val::i32(x)]).collect();
    let before_a: Vec<_> =
        inputs.iter().map(|a| execute(&m, "reca", a.clone()).expect("runs").value).collect();
    let before_b: Vec<_> =
        inputs.iter().map(|a| execute(&m, "recb", a.clone()).expect("runs").value).collect();
    let fa = m.func_by_name("reca").expect("exists");
    let fb = m.func_by_name("recb").expect("exists");
    let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("pair should merge");
    let merged_name = m.func(info.merged).name.clone();
    commit_merge(&mut m, &info).expect("commit succeeds");
    assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    // Call through the merged function directly with the right func_id.
    let merged = m.func_by_name(&merged_name).expect("merged exists");
    let nparams = m.func(merged).params().len();
    for (k, args) in inputs.iter().enumerate() {
        for (first, expect) in [(true, &before_a[k]), (false, &before_b[k])] {
            let mut full = vec![Val::bool(first)];
            full.extend(args.clone());
            while full.len() < nparams {
                full.push(Val::i32(0));
            }
            let got =
                fmsa_interp::Interpreter::new(&m).run_func(merged, full).expect("merged runs");
            assert_eq!(&got.value, expect, "side={first} args={args:?}");
        }
    }
}

#[test]
fn fmsa_options_end_to_end_equivalence() {
    // Whole-pass check: run the FMSA driver over a module of callers and
    // callees, then compare observable behaviour of the entry point.
    use fmsa_core::pass::run_fmsa;
    use fmsa_core::Config;
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
    for (name, c) in [("ka", 17), ("kb", 19), ("kc", 23)] {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for k in 0..8 {
            v = b.add(v, Value::Param(1));
            v = b.mul(v, b.const_i32(k + 1));
        }
        v = b.xor(v, b.const_i32(c));
        b.ret(Some(v));
    }
    let main_ty = m.types.func(i32t, vec![i32t]);
    let main = m.create_function("main", main_ty);
    {
        let (ka, kb, kc) = (
            m.func_by_name("ka").expect("ka"),
            m.func_by_name("kb").expect("kb"),
            m.func_by_name("kc").expect("kc"),
        );
        let mut b = FuncBuilder::new(&mut m, main);
        let e = b.block("entry");
        b.switch_to(e);
        let x = b.call(ka, vec![Value::Param(0), b.const_i32(2)]);
        let y = b.call(kb, vec![x, b.const_i32(3)]);
        let z = b.call(kc, vec![y, x]);
        b.ret(Some(z));
    }
    let inputs = i32_inputs();
    let before: Vec<_> =
        inputs.iter().map(|a| execute(&m, "main", a.clone()).expect("runs").value).collect();
    let cfg = Config::new().threshold(10).exclude(["main"]);
    let stats = run_fmsa(&mut m, &cfg.fmsa_options());
    assert!(stats.merges >= 1, "{stats:?}");
    assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    for (args, exp) in inputs.iter().zip(before) {
        let after = execute(&m, "main", args.clone()).expect("runs");
        assert_eq!(after.value, exp, "main({args:?})");
    }
}

/// Helper used by a few tests that need direct access to FuncIds.
#[allow(dead_code)]
fn func(m: &Module, name: &str) -> FuncId {
    m.func_by_name(name).expect("function exists")
}
