//! Flight-recorder integration tests: Chrome-trace well-formedness
//! over random span trees, the observe-don't-decide invariant (tracing
//! changes no output bytes at any thread count), and exact
//! reconciliation of the per-attempt decision log against the run's
//! aggregate stats.
//!
//! The recorder is process-global and `cargo test` runs tests on
//! concurrent threads, so every test that enables tracing or drains
//! the buffers holds [`RECORDER`] for its whole body.

use fmsa_core::pass::{run_fmsa, FmsaStats};
use fmsa_core::pipeline::run_fmsa_pipeline;
use fmsa_core::telemetry::{trace, DecisionOutcome};
use fmsa_core::Config;
use fmsa_core::SearchStrategy;
use fmsa_ir::printer::print_module;
use fmsa_workloads::{clone_swarm_module, SwarmConfig};
use proptest::prelude::*;
use std::sync::Mutex;

/// Serializes access to the global trace recorder across test threads.
static RECORDER: Mutex<()> = Mutex::new(());

fn swarm(functions: usize, seed: u64) -> fmsa_ir::Module {
    let mut cfg = SwarmConfig::with_functions(functions);
    cfg.seed = seed;
    clone_swarm_module(&cfg)
}

fn cfg() -> Config {
    Config::new().threshold(5).search(SearchStrategy::lsh())
}

/// Emits a deterministic span tree described by `shape`: entry `i`
/// holds the number of children at depth `i` (bounded), recursing one
/// level per entry. Returns the number of spans emitted.
fn emit_tree(shape: &[usize]) -> usize {
    const NAMES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
    let Some((&width, rest)) = shape.split_first() else {
        return 0;
    };
    let mut emitted = 0;
    for i in 0..width.clamp(1, 3) {
        let _g = trace::span("test", NAMES[i % NAMES.len()]);
        emitted += 1 + emit_tree(rest);
    }
    emitted
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 16, ..ProptestConfig::default() })]

    /// Any span tree drains to balanced, well-nested begin/end pairs,
    /// and the Chrome export stays structurally sound (one JSON object
    /// per event, `B`s and `E`s balanced).
    #[test]
    fn random_span_trees_export_well_nested(shape in proptest::collection::vec(1usize..4, 1..5)) {
        let _lock = RECORDER.lock().unwrap();
        trace::disable();
        let _ = trace::drain();

        trace::enable();
        let spans = emit_tree(&shape);
        trace::disable();
        let (events, dropped) = trace::drain();

        prop_assert_eq!(dropped, 0);
        prop_assert_eq!(events.len(), spans * 2, "one begin + one end per span");
        prop_assert!(trace::check_nesting(&events).is_ok());

        let export = trace::export_chrome(&events);
        // Bound outside the assert macros: the vendored prop_assert!
        // stringifies its expression into a format string, so literal
        // braces in the expression would break it.
        let envelope_ok = export.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[")
            && export.trim_end().ends_with("]}");
        prop_assert!(envelope_ok, "bad Chrome export envelope");
        prop_assert_eq!(export.matches("\"ph\":\"B\"").count(), spans);
        prop_assert_eq!(export.matches("\"ph\":\"E\"").count(), spans);
        // Braces stay balanced — no event can break the envelope (span
        // names and args here contain no string-literal braces).
        prop_assert_eq!(export.matches('{').count(), export.matches('}').count());
    }
}

/// A real merge run traces the full hierarchy, well nested, and the
/// recorder round-trips through disable/drain leaving nothing behind.
#[test]
fn merge_run_traces_are_well_nested() {
    let _lock = RECORDER.lock().unwrap();
    trace::disable();
    let _ = trace::drain();

    trace::enable();
    let mut m = swarm(64, 7);
    run_fmsa(&mut m, &cfg().fmsa_options());
    let pcfg = cfg().parallel(2);
    let mut m2 = swarm(64, 7);
    run_fmsa_pipeline(&mut m2, &pcfg.fmsa_options(), &pcfg.pipeline_options());
    trace::disable();

    let (events, _) = trace::drain();
    assert!(!events.is_empty());
    trace::check_nesting(&events).expect("merge spans are well nested");
    for name in ["pass", "generation", "schedule", "prepare", "commit", "merge_attempt"] {
        assert!(events.iter().any(|e| e.name == name), "missing span {name:?}");
    }
    let (leftover, _) = trace::drain();
    assert!(leftover.is_empty(), "drain must clear the buffers");
}

/// Tracing observes, it never decides: the printed module is
/// byte-identical with the recorder off and on, sequential and at
/// every pipeline width.
#[test]
fn tracing_changes_no_output_bytes() {
    let _lock = RECORDER.lock().unwrap();
    trace::disable();
    let _ = trace::drain();

    let reference = {
        let mut m = swarm(96, 3);
        run_fmsa(&mut m, &cfg().fmsa_options());
        print_module(&m)
    };
    for tracing_on in [false, true] {
        if tracing_on {
            trace::enable();
        } else {
            trace::disable();
        }
        let mut m = swarm(96, 3);
        run_fmsa(&mut m, &cfg().fmsa_options());
        assert_eq!(print_module(&m), reference, "sequential, tracing={tracing_on}");
        for threads in [1usize, 2, 4, 8] {
            let pcfg = cfg().parallel(threads);
            let mut m = swarm(96, 3);
            run_fmsa_pipeline(&mut m, &pcfg.fmsa_options(), &pcfg.pipeline_options());
            assert_eq!(
                print_module(&m),
                reference,
                "pipeline threads={threads}, tracing={tracing_on}"
            );
        }
    }
    trace::disable();
    let _ = trace::drain();
}

fn assert_reconciled(label: &str, st: &FmsaStats) {
    use DecisionOutcome as O;
    let d = &st.decisions;
    assert_eq!(d.total(), st.attempted as u64, "{label}: one record per attempt");
    assert_eq!(
        d.count(O::Merged) + d.count(O::ConflictFallback),
        st.merges as u64,
        "{label}: committed merges"
    );
    if let Some(p) = st.pipeline.as_ref() {
        assert_eq!(d.count(O::GateSkipped), p.gate_skipped as u64, "{label}: gate");
        assert_eq!(d.count(O::BudgetSkipped), p.budget_skipped as u64, "{label}: budget");
        assert_eq!(d.count(O::Quarantined), p.quarantined() as u64, "{label}: quarantine");
    } else {
        assert_eq!(d.count(O::ConflictFallback), 0, "{label}: sequential runs cannot conflict");
    }
    // Retained records never exceed the exact totals, and the JSONL
    // dump carries exactly the retained records.
    assert!(d.len() as u64 <= d.total());
    assert_eq!(d.to_jsonl().lines().count(), d.len());
}

/// Every attempt the drivers count lands as exactly one decision
/// record, with outcome counts that reconcile against the aggregate
/// stats — sequential and parallel.
#[test]
fn decision_log_reconciles_with_stats() {
    // Hold the recorder lock: these merge runs would otherwise emit
    // events into another test's tracing-enabled window and skew its
    // event counts.
    let _lock = RECORDER.lock().unwrap();
    let m = swarm(128, 11);
    let mut m_seq = m.clone();
    let seq = run_fmsa(&mut m_seq, &cfg().fmsa_options());
    assert!(seq.attempted > 0, "swarm produced no merge attempts");
    assert_reconciled("sequential", &seq);

    for threads in [1usize, 4] {
        let pcfg = cfg().parallel(threads);
        let mut m_par = m.clone();
        let par = run_fmsa_pipeline(&mut m_par, &pcfg.fmsa_options(), &pcfg.pipeline_options());
        assert_reconciled(&format!("pipeline-{threads}"), &par);
        // The thread-invariant half of the outcome split matches the
        // sequential run; the Merged/ConflictFallback split itself may
        // shift with scheduling.
        use DecisionOutcome as O;
        assert_eq!(
            par.decisions.count(O::Merged) + par.decisions.count(O::ConflictFallback),
            seq.merges as u64,
            "pipeline-{threads} commits the sequential merge set"
        );
    }
}

/// The bounded log drops oldest records but keeps exact totals.
#[test]
fn decision_log_retention_bound_keeps_exact_counts() {
    use fmsa_core::telemetry::{DecisionLog, DecisionRecord};
    let mut log = DecisionLog::new(4);
    for i in 0..10u32 {
        log.push(DecisionRecord {
            subject: format!("f{i}"),
            candidate: "g".to_owned(),
            similarity: 0.5,
            rank: 1,
            align_score: Some(i as i64),
            delta: None,
            outcome: if i % 2 == 0 {
                DecisionOutcome::Merged
            } else {
                DecisionOutcome::Unprofitable
            },
        });
    }
    assert_eq!(log.total(), 10);
    assert_eq!(log.len(), 4);
    assert_eq!(log.dropped(), 6);
    assert_eq!(log.count(DecisionOutcome::Merged), 5);
    assert_eq!(log.count(DecisionOutcome::Unprofitable), 5);
    // recent() returns the newest records, newest last.
    let recent = log.recent(2);
    assert_eq!(recent.len(), 2);
    assert_eq!(recent[1].subject, "f9");
}
