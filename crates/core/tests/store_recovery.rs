//! Crash-recovery property tests for the v2 store WAL.
//!
//! The recovery invariant under test: for *any* truncation (kill at byte
//! N) and *any* single-bit corruption of a `functions.store` log,
//! opening the store (a) never panics, (b) recovers exactly the longest
//! checksum-valid prefix of records, and (c) rebuilds an LSH index equal
//! to a fresh index built over the recovered entries' signatures. The
//! expected prefix is computed by an **independent walker** in this file
//! — including an independent bitwise CRC32 — so a store-side framing
//! bug cannot cancel itself out of the comparison.

use fmsa_core::search::minhash::estimated_jaccard;
use fmsa_core::store::STORE_FILE;
use fmsa_core::{FunctionStore, LshConfig, LshSearch};
use fmsa_ir::{FuncBuilder, FuncId, Module, Value};
use proptest::prelude::*;
use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicUsize = AtomicUsize::new(0);
    let n = N.fetch_add(1, Ordering::Relaxed);
    std::env::temp_dir().join(format!("fmsa-recovery-{}-{tag}-{n}", std::process::id()))
}

fn module_with(names: &[(&str, i32)]) -> Module {
    let mut m = Module::new("m");
    let i32t = m.types.i32();
    let fn_ty = m.types.func(i32t, vec![i32t]);
    for &(name, c) in names {
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for j in 0..6 {
            v = b.add(v, b.const_i32(c + j));
        }
        b.ret(Some(v));
    }
    m
}

/// One well-formed v2 log with several entries and several durable
/// `seen` bump records, built once and corrupted per case.
fn fixture() -> &'static [u8] {
    static RAW: OnceLock<Vec<u8>> = OnceLock::new();
    RAW.get_or_init(|| {
        let dir = temp_dir("fixture");
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            store.ingest_module(&module_with(&[("a", 1), ("b", 9), ("c", 40)])).unwrap();
            store.ingest_module(&module_with(&[("a2", 1), ("d", 77)])).unwrap();
            store.ingest_module(&module_with(&[("b2", 9), ("c2", 40)])).unwrap();
            store.flush().unwrap();
        }
        let raw = std::fs::read(dir.join(STORE_FILE)).unwrap();
        std::fs::remove_dir_all(&dir).ok();
        assert!(raw.len() > 600, "fixture should span several records ({} bytes)", raw.len());
        raw
    })
}

/// Independent bitwise CRC32 (IEEE, reflected) — deliberately not the
/// store's table-driven implementation.
fn crc32_bitwise(bytes: &[u8]) -> u32 {
    let mut c = !0u32;
    for &b in bytes {
        c ^= b as u32;
        for _ in 0..8 {
            c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
        }
    }
    !c
}

/// Independent recovery walker: re-implements the v2 framing rules and
/// returns the `(hash, seen)` set of the longest valid prefix.
fn expected_recovery(raw: &[u8]) -> Vec<(String, u64)> {
    let header = b"fmsa-store v2\n";
    if !raw.starts_with(header) {
        return Vec::new();
    }
    let mut entries: Vec<(String, u64)> = Vec::new();
    let mut pos = header.len();
    'records: loop {
        let rest = &raw[pos..];
        if rest.is_empty() {
            break;
        }
        let Some(nl) = rest.iter().position(|&b| b == b'\n') else { break };
        let Ok(line) = std::str::from_utf8(&rest[..nl]) else { break };
        let Some(fields) = line.strip_prefix("R ") else { break };
        let Some((len_s, crc_s)) = fields.split_once(' ') else { break };
        let (Ok(len), Ok(crc)) = (len_s.parse::<usize>(), u32::from_str_radix(crc_s, 16)) else {
            break;
        };
        if crc_s.len() != 8 || rest.len() < nl + 1 + len + 1 || rest[nl + 1 + len] != b'\n' {
            break;
        }
        let payload = &rest[nl + 1..nl + 1 + len];
        if crc32_bitwise(payload) != crc {
            break;
        }
        let Ok(text) = std::str::from_utf8(payload) else { break };
        if let Some(fields) = text.strip_prefix("seen ") {
            let Some((hash, delta)) = fields.split_once(" +") else { break };
            let Ok(delta) = delta.parse::<u64>() else { break };
            if let Some((_, n)) = entries.iter_mut().find(|(h, _)| h == hash) {
                *n += delta;
            }
        } else if let Some(fields) = text.strip_prefix("fn ") {
            let mut words = fields.split(' ');
            let Some(hash) = words.next() else { break };
            let Some(seen) =
                words.next().and_then(|w| w.strip_prefix("seen=")).and_then(|s| s.parse().ok())
            else {
                break;
            };
            if !entries.iter().any(|(h, _)| h == hash) {
                entries.push((hash.to_owned(), seen));
            }
        } else {
            break 'records;
        }
        pos += nl + 1 + len + 1;
    }
    entries
}

/// Opens a store over `raw` written to a fresh dir and checks the full
/// recovery invariant against the independent walker.
fn check_recovery(raw: &[u8], ctx: &str) -> Result<(), TestCaseError> {
    let dir = temp_dir("case");
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join(STORE_FILE), raw).unwrap();
    // (a) opening never panics — a panic here fails the harness.
    let store = FunctionStore::open(&dir).unwrap();
    // (b) exactly the longest checksum-valid prefix is recovered.
    let expected = expected_recovery(raw);
    let got: Vec<(String, u64)> = store.entries().map(|e| (e.hash.to_string(), e.seen)).collect();
    prop_assert_eq!(&got, &expected, "{}: recovered set != longest valid prefix", ctx);
    // (c) the rebuilt LSH index equals a fresh one over the recovered
    // entries: every stored entry's similar-set must match what a fresh
    // index over the same signatures produces.
    let mut fresh = LshSearch::new(LshConfig::default());
    let entries: Vec<_> = store.entries().collect();
    for (i, e) in entries.iter().enumerate() {
        fresh.insert_signature(FuncId::from_index(i), e.signature().to_vec());
    }
    for (i, e) in entries.iter().enumerate() {
        let got: Vec<(String, f64)> =
            store.similar(e.hash, 8).into_iter().map(|s| (s.hash.to_string(), s.score)).collect();
        let mut want: Vec<(String, f64)> = fresh
            .shortlist(FuncId::from_index(i))
            .into_iter()
            .map(|f| {
                let o = entries[f.index()];
                (o.hash.to_string(), estimated_jaccard(e.signature(), o.signature()))
            })
            .collect();
        want.sort_by(|a, b| {
            b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal).then(a.0.cmp(&b.0))
        });
        want.truncate(8);
        prop_assert_eq!(got, want, "{}: LSH rebuild diverges from fresh index", ctx);
    }
    std::fs::remove_dir_all(&dir).ok();
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig { cases: 64, ..ProptestConfig::default() })]

    /// Kill-at-byte-N: every truncation point recovers the longest
    /// valid prefix, never panics, and leaves an appendable log.
    #[test]
    fn truncation_recovers_longest_valid_prefix(frac in 0usize..10_000) {
        let raw = fixture();
        let cut = raw.len() * frac / 10_000;
        check_recovery(&raw[..cut], &format!("cut at {cut}/{}", raw.len()))?;
    }

    /// Single-bit corruption anywhere in the log: the CRC catches it and
    /// recovery stops exactly at the corrupted record.
    #[test]
    fn bit_flip_recovers_longest_valid_prefix((frac, bit) in (0usize..10_000, 0u8..8)) {
        let raw = fixture();
        let offset = raw.len() * frac / 10_000;
        let mut corrupted = raw.to_vec();
        if offset < corrupted.len() {
            corrupted[offset] ^= 1 << bit;
        }
        check_recovery(&corrupted, &format!("flip bit {bit} at {offset}/{}", raw.len()))?;
    }

    /// Kill + torn sector: truncate at a kill point, then flip a bit in
    /// what remains — the composed corruption a real crash can leave.
    #[test]
    fn truncation_plus_bit_flip_recovers(
        (kill_frac, flip_frac, bit) in (0usize..10_000, 0usize..10_000, 0u8..8),
    ) {
        let raw = fixture();
        let kill = raw.len() * kill_frac / 10_000;
        let mut corrupted = raw[..kill].to_vec();
        if !corrupted.is_empty() {
            let offset = (corrupted.len() - 1) * flip_frac / 10_000;
            corrupted[offset] ^= 1 << bit;
        }
        check_recovery(&corrupted, &format!("kill {kill} + flip bit {bit}"))?;
    }
}

/// A recovered (possibly truncated) store must accept new appends and
/// serve them after another reopen — recovery truncates the corrupt
/// tail rather than appending into its shadow.
#[test]
fn recovered_store_is_appendable() {
    let raw = fixture();
    for cut in [raw.len() / 3, raw.len() / 2, raw.len() - 7] {
        let dir = temp_dir("append");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join(STORE_FILE), &raw[..cut]).unwrap();
        let mut store = FunctionStore::open(&dir).unwrap();
        let recovered = store.len();
        store.ingest_module(&module_with(&[("late", 123)])).unwrap();
        drop(store);
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.recovery().skipped_records, 0, "cut {cut}: reopened log is clean");
        assert!(store.len() > recovered, "cut {cut}: appended entry must survive");
        std::fs::remove_dir_all(&dir).ok();
    }
}
