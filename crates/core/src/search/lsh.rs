//! Banded LSH index over MinHash signatures.
//!
//! Signatures are split into `bands` bands of `rows = hashes / bands`
//! positions each; a function lands in one bucket per band, keyed by the
//! hash of that band's rows. Two functions collide in *some* band — and
//! therefore shortlist each other — with probability `1 − (1 − s^rows)^bands`
//! where `s` is their signature agreement rate. See [`super`] for the
//! parameter trade-off discussion.
//!
//! The index is incremental: `insert`/`remove` touch only the function's
//! own `bands` buckets, so the merge feedback loop maintains it in O(1)
//! per update instead of rebuilding a candidate pool per iteration.
//!
//! # Band sharding
//!
//! The bucket table is **sharded by band**: one `HashMap` per band
//! instead of a single map keyed by `(band, rows)` hashes. Queries are
//! unchanged (a shortlist reads the subject's bucket in every shard and
//! sorts the union, so shard layout is invisible to ranking), but bulk
//! maintenance parallelizes: [`LshSearch::insert_batch`] hashes
//! signatures on the worker pool and then fills all `bands` shards
//! concurrently, one worker per shard, with no locks — each band's
//! bucket membership order is the batch order, exactly what serial
//! insertion would have produced. That turns the million-function index
//! seed from the pass's largest serial cost into a parallel one.

use super::minhash::MinHasher;
use super::CandidateSearch;
use crate::fingerprint::Fingerprint;
use crate::ranking::{rank_candidates, Candidate};
use fmsa_ir::FuncId;
use std::collections::HashMap;

/// Tuning knobs for [`LshSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Signature length (number of MinHash permutations).
    pub hashes: usize,
    /// Number of bands the signature is split into. Must divide `hashes`.
    pub bands: usize,
    /// Per-feature occurrence cap when building signatures.
    pub occurrence_cap: u32,
}

impl Default for LshConfig {
    fn default() -> Self {
        // 128 hashes in 8 bands of 16 rows, calibrated on clone-swarm
        // modules: family pairs (signature agreement ≥ 0.87 measured)
        // collide with ≈ 0.98 average probability, while generator noise
        // (agreement ~0.6) collides ≈ 3.6% of the time, keeping shortlists
        // ~30× smaller than the module. The occurrence cap of 64 keeps
        // instruction *counts* visible to the signature — capping harder
        // (e.g. 8) made every mid-sized function look alike and inflated
        // buckets enough that LSH lost to the exact scan.
        LshConfig { hashes: 128, bands: 8, occurrence_cap: 64 }
    }
}

impl LshConfig {
    /// Rows per band.
    pub fn rows(&self) -> usize {
        self.hashes / self.bands
    }

    /// Probability that two functions with signature agreement `s` collide
    /// in at least one band (the LSH S-curve).
    pub fn collision_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows() as i32)).powi(self.bands as i32)
    }
}

/// FNV-style key of one band's signature rows. The band index is folded
/// into the seed so equal row values in different bands cannot alias —
/// historically this let all bands share one bucket map; with per-band
/// shards it is redundant but kept so keys stay stable across layouts.
fn band_key(band: usize, chunk: &[u64]) -> u64 {
    let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (band as u64).wrapping_mul(0x100_0000_01b3);
    for &x in chunk {
        h ^= x;
        h = h.wrapping_mul(0x100_0000_01b3);
    }
    h
}

/// Near-constant-time candidate shortlisting via banded MinHash LSH.
#[derive(Debug, Clone)]
pub struct LshSearch {
    cfg: LshConfig,
    hasher: MinHasher,
    /// Stored signature per indexed function (needed to find its buckets
    /// again on removal).
    signatures: HashMap<FuncId, Vec<u64>>,
    /// One bucket map per band: `shards[band][band_key] → members`.
    /// Vectors stay tiny for healthy parameters; membership order is
    /// irrelevant because queries sort the shortlist. Disjoint by
    /// construction, so batch maintenance runs one worker per shard.
    shards: Vec<HashMap<u64, Vec<FuncId>>>,
}

impl LshSearch {
    /// Empty index with the given parameters.
    pub fn new(cfg: LshConfig) -> LshSearch {
        assert!(cfg.bands > 0 && cfg.hashes.is_multiple_of(cfg.bands), "bands must divide hashes");
        LshSearch {
            cfg,
            hasher: MinHasher::new(cfg.hashes, cfg.occurrence_cap),
            signatures: HashMap::new(),
            shards: vec![HashMap::new(); cfg.bands],
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &LshConfig {
        &self.cfg
    }

    /// `(band, key)` pairs of a signature, one per shard.
    fn band_keys<'a>(&'a self, sig: &'a [u64]) -> impl Iterator<Item = (usize, u64)> + 'a {
        let rows = self.cfg.rows();
        sig.chunks_exact(rows).enumerate().map(|(band, chunk)| (band, band_key(band, chunk)))
    }

    /// Inserts `func` under a precomputed MinHash signature, skipping the
    /// fingerprint hashing. This is how the persistent store
    /// ([`crate::store`]) rebuilds the index from disk on restart:
    /// signatures are durable, fingerprints are not. The signature length
    /// must match the configured `hashes`.
    pub fn insert_signature(&mut self, func: FuncId, sig: Vec<u64>) {
        assert_eq!(sig.len(), self.cfg.hashes, "signature length must match LshConfig::hashes");
        if self.signatures.contains_key(&func) {
            self.remove(func);
        }
        let keys: Vec<(usize, u64)> = self.band_keys(&sig).collect();
        for (band, key) in keys {
            self.shards[band].entry(key).or_default().push(func);
        }
        self.signatures.insert(func, sig);
    }

    /// The stored signature of `func`, if indexed — what the persistent
    /// store writes to disk.
    pub fn signature_of(&self, func: FuncId) -> Option<&[u64]> {
        self.signatures.get(&func).map(Vec::as_slice)
    }

    /// Computes the MinHash signature `insert` would store for `fp`,
    /// without touching the index.
    pub fn signature_for(&self, fp: &Fingerprint) -> Vec<u64> {
        self.hasher.signature(fp)
    }

    /// The bucket co-members of `subject`, sorted and deduplicated —
    /// exposed for tests and diagnostics.
    pub fn shortlist(&self, subject: FuncId) -> Vec<FuncId> {
        let Some(sig) = self.signatures.get(&subject) else {
            return Vec::new();
        };
        let mut out: Vec<FuncId> = Vec::new();
        for (band, key) in self.band_keys(sig) {
            if let Some(members) = self.shards[band].get(&key) {
                out.extend(members.iter().copied().filter(|&f| f != subject));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl CandidateSearch for LshSearch {
    fn insert(&mut self, func: FuncId, fp: &Fingerprint) {
        self.insert_signature(func, self.hasher.signature(fp));
    }

    /// Parallel bulk insert: signatures are hashed on the pool
    /// (`MinHasher` is pure, so contents match the serial path), then
    /// every band shard is filled by its own worker — shards are
    /// disjoint maps, so no synchronization is needed, and each band's
    /// bucket membership order is the batch order, identical to what
    /// one-at-a-time insertion would produce.
    fn insert_batch(&mut self, items: &[(FuncId, &Fingerprint)], pool: Option<&rayon::ThreadPool>) {
        // Refresh semantics first (rare in batch callers; the seed and
        // store-rebuild paths only ever batch fresh functions).
        for &(func, _) in items {
            if self.signatures.contains_key(&func) {
                self.remove(func);
            }
        }
        let hasher = &self.hasher;
        let sigs: Vec<(FuncId, Vec<u64>)> = match pool {
            Some(pool) if pool.current_num_threads() > 1 && items.len() > 1 => {
                pool.par_map(items, |_, &(func, fp)| (func, hasher.signature(fp)))
            }
            _ => items.iter().map(|&(func, fp)| (func, hasher.signature(fp))).collect(),
        };
        let rows = self.cfg.rows();
        match pool {
            Some(pool) if pool.current_num_threads() > 1 && self.shards.len() > 1 => {
                pool.scope(|s| {
                    for (band, shard) in self.shards.iter_mut().enumerate() {
                        let sigs = &sigs;
                        s.spawn(move |_| {
                            for (func, sig) in sigs {
                                let key = band_key(band, &sig[band * rows..(band + 1) * rows]);
                                shard.entry(key).or_default().push(*func);
                            }
                        });
                    }
                });
            }
            _ => {
                for (band, shard) in self.shards.iter_mut().enumerate() {
                    for (func, sig) in &sigs {
                        let key = band_key(band, &sig[band * rows..(band + 1) * rows]);
                        shard.entry(key).or_default().push(*func);
                    }
                }
            }
        }
        self.signatures.extend(sigs);
    }

    fn remove(&mut self, func: FuncId) {
        let Some(sig) = self.signatures.remove(&func) else {
            return;
        };
        let rows = self.cfg.rows();
        for (band, chunk) in sig.chunks_exact(rows).enumerate() {
            let key = band_key(band, chunk);
            if let Some(members) = self.shards[band].get_mut(&key) {
                members.retain(|&f| f != func);
                if members.is_empty() {
                    self.shards[band].remove(&key);
                }
            }
        }
    }

    fn candidates(
        &self,
        subject: FuncId,
        subject_fp: &Fingerprint,
        fingerprints: &HashMap<FuncId, Fingerprint>,
        threshold: usize,
        min_similarity: f64,
    ) -> Vec<Candidate> {
        let shortlist = self.shortlist(subject);
        rank_candidates(
            subject,
            subject_fp,
            shortlist.into_iter().filter_map(|f| fingerprints.get(&f).map(|fp| (f, fp))),
            threshold,
            min_similarity,
        )
    }

    fn len(&self) -> usize {
        self.signatures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Module, Value};

    fn chain_fn(m: &mut Module, name: &str, adds: usize, muls: usize) -> FuncId {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..adds {
            v = b.add(v, b.const_i32(1));
        }
        for _ in 0..muls {
            v = b.mul(v, b.const_i32(3));
        }
        b.ret(Some(v));
        f
    }

    fn index_all(m: &Module, ids: &[FuncId]) -> (LshSearch, HashMap<FuncId, Fingerprint>) {
        let mut idx = LshSearch::new(LshConfig::default());
        let mut fps = HashMap::new();
        for &f in ids {
            let fp = Fingerprint::of(m, f);
            idx.insert(f, &fp);
            fps.insert(f, fp);
        }
        (idx, fps)
    }

    #[test]
    fn twins_shortlist_each_other() {
        let mut m = Module::new("m");
        let a = chain_fn(&mut m, "a", 12, 3);
        let b = chain_fn(&mut m, "b", 12, 3);
        let far = chain_fn(&mut m, "far", 1, 14);
        let (idx, fps) = index_all(&m, &[a, b, far]);
        assert!(idx.shortlist(a).contains(&b));
        let top = idx.candidates(a, &fps[&a], &fps, 5, 0.0);
        assert_eq!(top[0].func, b);
    }

    #[test]
    fn removal_evicts_from_buckets() {
        let mut m = Module::new("m");
        let a = chain_fn(&mut m, "a", 12, 3);
        let b = chain_fn(&mut m, "b", 12, 3);
        let (mut idx, _) = index_all(&m, &[a, b]);
        assert_eq!(idx.len(), 2);
        idx.remove(b);
        assert_eq!(idx.len(), 1);
        assert!(idx.shortlist(a).is_empty());
        // Double-remove is a no-op.
        idx.remove(b);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn collision_probability_is_an_s_curve() {
        let cfg = LshConfig::default();
        // Near-duplicates (clone-family regime) are almost always caught...
        assert!(cfg.collision_probability(0.95) > 0.95);
        assert!(cfg.collision_probability(0.9) > 0.8);
        // ...while generator noise rarely collides.
        assert!(cfg.collision_probability(0.6) < 0.05);
        assert!(cfg.collision_probability(0.2) < 1e-6);
        assert!(cfg.collision_probability(0.9) > cfg.collision_probability(0.5));
    }

    #[test]
    fn query_for_unknown_subject_is_empty() {
        let mut m = Module::new("m");
        let a = chain_fn(&mut m, "a", 3, 3);
        let idx = LshSearch::new(LshConfig::default());
        let fps = HashMap::from([(a, Fingerprint::of(&m, a))]);
        assert!(idx.candidates(a, &fps[&a], &fps, 5, 0.0).is_empty());
    }
}
