//! Banded LSH index over MinHash signatures.
//!
//! Signatures are split into `bands` bands of `rows = hashes / bands`
//! positions each; a function lands in one bucket per band, keyed by the
//! hash of that band's rows. Two functions collide in *some* band — and
//! therefore shortlist each other — with probability `1 − (1 − s^rows)^bands`
//! where `s` is their signature agreement rate. See [`super`] for the
//! parameter trade-off discussion.
//!
//! The index is incremental: `insert`/`remove` touch only the function's
//! own `bands` buckets, so the merge feedback loop maintains it in O(1)
//! per update instead of rebuilding a candidate pool per iteration.

use super::minhash::MinHasher;
use super::CandidateSearch;
use crate::fingerprint::Fingerprint;
use crate::ranking::{rank_candidates, Candidate};
use fmsa_ir::FuncId;
use std::collections::HashMap;

/// Tuning knobs for [`LshSearch`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LshConfig {
    /// Signature length (number of MinHash permutations).
    pub hashes: usize,
    /// Number of bands the signature is split into. Must divide `hashes`.
    pub bands: usize,
    /// Per-feature occurrence cap when building signatures.
    pub occurrence_cap: u32,
}

impl Default for LshConfig {
    fn default() -> Self {
        // 128 hashes in 8 bands of 16 rows, calibrated on clone-swarm
        // modules: family pairs (signature agreement ≥ 0.87 measured)
        // collide with ≈ 0.98 average probability, while generator noise
        // (agreement ~0.6) collides ≈ 3.6% of the time, keeping shortlists
        // ~30× smaller than the module. The occurrence cap of 64 keeps
        // instruction *counts* visible to the signature — capping harder
        // (e.g. 8) made every mid-sized function look alike and inflated
        // buckets enough that LSH lost to the exact scan.
        LshConfig { hashes: 128, bands: 8, occurrence_cap: 64 }
    }
}

impl LshConfig {
    /// Rows per band.
    pub fn rows(&self) -> usize {
        self.hashes / self.bands
    }

    /// Probability that two functions with signature agreement `s` collide
    /// in at least one band (the LSH S-curve).
    pub fn collision_probability(&self, s: f64) -> f64 {
        1.0 - (1.0 - s.powi(self.rows() as i32)).powi(self.bands as i32)
    }
}

/// Near-constant-time candidate shortlisting via banded MinHash LSH.
#[derive(Debug, Clone)]
pub struct LshSearch {
    cfg: LshConfig,
    hasher: MinHasher,
    /// Stored signature per indexed function (needed to find its buckets
    /// again on removal).
    signatures: HashMap<FuncId, Vec<u64>>,
    /// `hash(band index, band rows) → members`. Vectors stay tiny for
    /// healthy parameters; membership order is irrelevant because queries
    /// sort the shortlist.
    buckets: HashMap<u64, Vec<FuncId>>,
}

impl LshSearch {
    /// Empty index with the given parameters.
    pub fn new(cfg: LshConfig) -> LshSearch {
        assert!(cfg.bands > 0 && cfg.hashes.is_multiple_of(cfg.bands), "bands must divide hashes");
        LshSearch {
            cfg,
            hasher: MinHasher::new(cfg.hashes, cfg.occurrence_cap),
            signatures: HashMap::new(),
            buckets: HashMap::new(),
        }
    }

    /// The configured parameters.
    pub fn config(&self) -> &LshConfig {
        &self.cfg
    }

    fn band_keys<'a>(&'a self, sig: &'a [u64]) -> impl Iterator<Item = u64> + 'a {
        let rows = self.cfg.rows();
        sig.chunks_exact(rows).enumerate().map(|(band, chunk)| {
            let mut h = 0xcbf2_9ce4_8422_2325u64 ^ (band as u64).wrapping_mul(0x100_0000_01b3);
            for &x in chunk {
                h ^= x;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            h
        })
    }

    /// Inserts `func` under a precomputed MinHash signature, skipping the
    /// fingerprint hashing. This is how the persistent store
    /// ([`crate::store`]) rebuilds the index from disk on restart:
    /// signatures are durable, fingerprints are not. The signature length
    /// must match the configured `hashes`.
    pub fn insert_signature(&mut self, func: FuncId, sig: Vec<u64>) {
        assert_eq!(sig.len(), self.cfg.hashes, "signature length must match LshConfig::hashes");
        if self.signatures.contains_key(&func) {
            self.remove(func);
        }
        let keys: Vec<u64> = self.band_keys(&sig).collect();
        for key in keys {
            self.buckets.entry(key).or_default().push(func);
        }
        self.signatures.insert(func, sig);
    }

    /// The stored signature of `func`, if indexed — what the persistent
    /// store writes to disk.
    pub fn signature_of(&self, func: FuncId) -> Option<&[u64]> {
        self.signatures.get(&func).map(Vec::as_slice)
    }

    /// Computes the MinHash signature `insert` would store for `fp`,
    /// without touching the index.
    pub fn signature_for(&self, fp: &Fingerprint) -> Vec<u64> {
        self.hasher.signature(fp)
    }

    /// The bucket co-members of `subject`, sorted and deduplicated —
    /// exposed for tests and diagnostics.
    pub fn shortlist(&self, subject: FuncId) -> Vec<FuncId> {
        let Some(sig) = self.signatures.get(&subject) else {
            return Vec::new();
        };
        let mut out: Vec<FuncId> = Vec::new();
        for key in self.band_keys(sig) {
            if let Some(members) = self.buckets.get(&key) {
                out.extend(members.iter().copied().filter(|&f| f != subject));
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

impl CandidateSearch for LshSearch {
    fn insert(&mut self, func: FuncId, fp: &Fingerprint) {
        if self.signatures.contains_key(&func) {
            // Refresh: evict the stale bucket entries first.
            self.remove(func);
        }
        let sig = self.hasher.signature(fp);
        let keys: Vec<u64> = self.band_keys(&sig).collect();
        for key in keys {
            self.buckets.entry(key).or_default().push(func);
        }
        self.signatures.insert(func, sig);
    }

    fn remove(&mut self, func: FuncId) {
        let Some(sig) = self.signatures.remove(&func) else {
            return;
        };
        let keys: Vec<u64> = self.band_keys(&sig).collect();
        for key in keys {
            if let Some(members) = self.buckets.get_mut(&key) {
                members.retain(|&f| f != func);
                if members.is_empty() {
                    self.buckets.remove(&key);
                }
            }
        }
    }

    fn candidates(
        &self,
        subject: FuncId,
        subject_fp: &Fingerprint,
        fingerprints: &HashMap<FuncId, Fingerprint>,
        threshold: usize,
        min_similarity: f64,
    ) -> Vec<Candidate> {
        let shortlist = self.shortlist(subject);
        rank_candidates(
            subject,
            subject_fp,
            shortlist.into_iter().filter_map(|f| fingerprints.get(&f).map(|fp| (f, fp))),
            threshold,
            min_similarity,
        )
    }

    fn len(&self) -> usize {
        self.signatures.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Module, Value};

    fn chain_fn(m: &mut Module, name: &str, adds: usize, muls: usize) -> FuncId {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..adds {
            v = b.add(v, b.const_i32(1));
        }
        for _ in 0..muls {
            v = b.mul(v, b.const_i32(3));
        }
        b.ret(Some(v));
        f
    }

    fn index_all(m: &Module, ids: &[FuncId]) -> (LshSearch, HashMap<FuncId, Fingerprint>) {
        let mut idx = LshSearch::new(LshConfig::default());
        let mut fps = HashMap::new();
        for &f in ids {
            let fp = Fingerprint::of(m, f);
            idx.insert(f, &fp);
            fps.insert(f, fp);
        }
        (idx, fps)
    }

    #[test]
    fn twins_shortlist_each_other() {
        let mut m = Module::new("m");
        let a = chain_fn(&mut m, "a", 12, 3);
        let b = chain_fn(&mut m, "b", 12, 3);
        let far = chain_fn(&mut m, "far", 1, 14);
        let (idx, fps) = index_all(&m, &[a, b, far]);
        assert!(idx.shortlist(a).contains(&b));
        let top = idx.candidates(a, &fps[&a], &fps, 5, 0.0);
        assert_eq!(top[0].func, b);
    }

    #[test]
    fn removal_evicts_from_buckets() {
        let mut m = Module::new("m");
        let a = chain_fn(&mut m, "a", 12, 3);
        let b = chain_fn(&mut m, "b", 12, 3);
        let (mut idx, _) = index_all(&m, &[a, b]);
        assert_eq!(idx.len(), 2);
        idx.remove(b);
        assert_eq!(idx.len(), 1);
        assert!(idx.shortlist(a).is_empty());
        // Double-remove is a no-op.
        idx.remove(b);
        assert_eq!(idx.len(), 1);
    }

    #[test]
    fn collision_probability_is_an_s_curve() {
        let cfg = LshConfig::default();
        // Near-duplicates (clone-family regime) are almost always caught...
        assert!(cfg.collision_probability(0.95) > 0.95);
        assert!(cfg.collision_probability(0.9) > 0.8);
        // ...while generator noise rarely collides.
        assert!(cfg.collision_probability(0.6) < 0.05);
        assert!(cfg.collision_probability(0.2) < 1e-6);
        assert!(cfg.collision_probability(0.9) > cfg.collision_probability(0.5));
    }

    #[test]
    fn query_for_unknown_subject_is_empty() {
        let mut m = Module::new("m");
        let a = chain_fn(&mut m, "a", 3, 3);
        let idx = LshSearch::new(LshConfig::default());
        let fps = HashMap::from([(a, Fingerprint::of(&m, a))]);
        assert!(idx.candidates(a, &fps[&a], &fps, 5, 0.0).is_empty());
    }
}
