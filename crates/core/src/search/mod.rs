//! Candidate search: how `run_fmsa` finds merge partners.
//!
//! The paper ranks every live function against every other (§IV), which is
//! quadratic in the number of functions and — per its own Fig. 13
//! breakdown — the second-largest cost of the pass. This module makes the
//! search strategy pluggable behind [`CandidateSearch`]:
//!
//! * [`ExactSearch`] — the paper's full pairwise ranking. O(n) per query,
//!   O(n²) per pass; exact, and therefore the precision baseline and the
//!   oracle's substrate.
//! * [`LshSearch`] — MinHash signatures over each function's opcode/type
//!   feature multiset ([`minhash`]), banded into a bucket index ([`lsh`]).
//!   A query inspects only the subject's own buckets, returning a small
//!   shortlist in ~O(1); the full similarity estimate is then computed
//!   only for shortlisted functions.
//!
//! Both implementations are *incremental*: the merge feedback loop removes
//! merged originals, inserts the merged function, and re-inserts
//! re-fingerprinted callers, so no per-iteration pool is ever rebuilt.
//!
//! # MinHash banding parameters and the precision/recall trade-off
//!
//! [`LshConfig`] splits a signature of `hashes` MinHash values into
//! `bands` bands of `rows = hashes / bands` values. Two functions whose
//! signatures agree on a fraction `s` of positions collide in at least one
//! band with probability `1 − (1 − s^rows)^bands` — an S-curve in `s`:
//!
//! * **More rows per band** (fewer bands) sharpens the curve and pushes it
//!   right: fewer false positives (smaller shortlists, faster pass) but
//!   lower recall for moderately-similar pairs.
//! * **More bands** (fewer rows) moves the curve left: near-duplicates are
//!   virtually never missed, at the cost of more shortlist noise to score.
//!
//! The default (128 hashes, 8 bands × 16 rows) was calibrated on measured
//! clone-swarm agreement distributions: family pairs sit at agreement
//! ≥ 0.87 and collide with ≈ 0.98 average probability, while unrelated
//! functions from the same generator (agreement ≈ 0.6) collide only ≈ 3.6%
//! of the time. Recall loss is concentrated on moderately-similar pairs the
//! profitability model would likely reject anyway — that is the quality
//! trade documented by the `lsh_tracks_exact_search` property test and the
//! `candidate_search` bench.
//!
//! `occurrence_cap` bounds how many occurrences of one opcode/type feed
//! the signature. It must stay high enough that instruction *counts*
//! remain visible (capping at 8 made every mid-sized function look alike
//! and inflated buckets until LSH lost to the exact scan), while still
//! preventing one unrolled loop from crowding out the rest of a function's
//! profile.

pub mod lsh;
pub mod minhash;

pub use lsh::{LshConfig, LshSearch};
pub use minhash::MinHasher;

use crate::fingerprint::Fingerprint;
use crate::ranking::{rank_candidates, Candidate};
use fmsa_ir::FuncId;
use std::collections::{BTreeSet, HashMap};

/// A maintained index over the live merge-eligible functions, queried for
/// the top merge candidates of one subject function.
///
/// `Send + Sync` is part of the contract: the pipeline's schedule stage
/// runs candidate queries for a whole generation concurrently against a
/// shared `&dyn CandidateSearch`, so `candidates` must be safe under
/// concurrent shared-reference calls (it takes `&self`, so this is the
/// usual no-interior-mutability requirement, not a locking one).
pub trait CandidateSearch: Send + Sync {
    /// Adds (or refreshes) `func` with fingerprint `fp`.
    ///
    /// Implementations must tolerate re-insertion of an already-indexed
    /// function (callers refresh fingerprints after call-site rewrites).
    fn insert(&mut self, func: FuncId, fp: &Fingerprint);

    /// Bulk-adds `items`, optionally using `pool` for parallel index
    /// construction. Must be observably identical to inserting the items
    /// one by one in slice order; the default does exactly that.
    /// [`LshSearch`] overrides it with sharded parallel seeding.
    fn insert_batch(&mut self, items: &[(FuncId, &Fingerprint)], pool: Option<&rayon::ThreadPool>) {
        let _ = pool;
        for &(func, fp) in items {
            self.insert(func, fp);
        }
    }

    /// Removes `func` from the index; no-op when absent.
    fn remove(&mut self, func: FuncId);

    /// Top `threshold` candidates for `subject`, most similar first,
    /// scored with the exact fingerprint similarity over `fingerprints`.
    /// `subject` itself is never returned.
    fn candidates(
        &self,
        subject: FuncId,
        subject_fp: &Fingerprint,
        fingerprints: &HashMap<FuncId, Fingerprint>,
        threshold: usize,
        min_similarity: f64,
    ) -> Vec<Candidate>;

    /// Number of indexed functions.
    fn len(&self) -> usize;

    /// Whether the index is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// The paper's exhaustive pairwise search: every query ranks every other
/// live function. Exact by construction; quadratic over a whole pass.
#[derive(Debug, Clone, Default)]
pub struct ExactSearch {
    /// Ordered so iteration (and therefore tie-breaking input order) is
    /// deterministic.
    live: BTreeSet<FuncId>,
}

impl ExactSearch {
    /// Empty index.
    pub fn new() -> ExactSearch {
        ExactSearch::default()
    }
}

impl CandidateSearch for ExactSearch {
    fn insert(&mut self, func: FuncId, _fp: &Fingerprint) {
        self.live.insert(func);
    }

    fn remove(&mut self, func: FuncId) {
        self.live.remove(&func);
    }

    fn candidates(
        &self,
        subject: FuncId,
        subject_fp: &Fingerprint,
        fingerprints: &HashMap<FuncId, Fingerprint>,
        threshold: usize,
        min_similarity: f64,
    ) -> Vec<Candidate> {
        rank_candidates(
            subject,
            subject_fp,
            self.live.iter().filter_map(|&f| fingerprints.get(&f).map(|fp| (f, fp))),
            threshold,
            min_similarity,
        )
    }

    fn len(&self) -> usize {
        self.live.len()
    }
}

/// Module size (eligible functions) at which [`SearchStrategy::Auto`]
/// switches from the exact pairwise scan to LSH shortlisting.
///
/// Calibrated from the `candidate_search` bench crossover: at 100
/// functions the exact scan still wins (the MinHash index build
/// dominates), by 1 000 functions LSH is ~5.6× faster end-to-end, with
/// the break-even shortly past 100. The default sits just above the
/// measured break-even so small suite modules keep the precision
/// baseline.
pub const AUTO_SEARCH_CROSSOVER: usize = 150;

/// Which candidate-search implementation `run_fmsa` uses.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum SearchStrategy {
    /// Full pairwise ranking (the paper's algorithm; precision baseline).
    Exact,
    /// Banded MinHash LSH shortlisting with the given parameters.
    Lsh(LshConfig),
    /// Selected per pass by module size: [`SearchStrategy::Exact`] below
    /// [`AUTO_SEARCH_CROSSOVER`] eligible functions,
    /// [`SearchStrategy::Lsh`] (default parameters) at or above it. The
    /// drivers resolve this before seeding the index, so the sequential
    /// and pipeline drivers always resolve identically (part of the
    /// bit-identity guarantee). Overridable via `fmsa_opt --search`.
    #[default]
    Auto,
}

impl SearchStrategy {
    /// LSH with default parameters.
    pub fn lsh() -> SearchStrategy {
        SearchStrategy::Lsh(LshConfig::default())
    }

    /// Resolves [`SearchStrategy::Auto`] against the number of eligible
    /// functions in the module; concrete strategies pass through.
    pub fn resolve(self, eligible_functions: usize) -> SearchStrategy {
        match self {
            SearchStrategy::Auto => {
                if eligible_functions >= AUTO_SEARCH_CROSSOVER {
                    SearchStrategy::lsh()
                } else {
                    SearchStrategy::Exact
                }
            }
            concrete => concrete,
        }
    }

    /// Instantiates the index for this strategy. Callers resolve
    /// [`SearchStrategy::Auto`] first (see [`SearchStrategy::resolve`]);
    /// an unresolved `Auto` conservatively builds the exact baseline.
    pub fn build(&self) -> Box<dyn CandidateSearch> {
        match self {
            SearchStrategy::Exact | SearchStrategy::Auto => Box::new(ExactSearch::new()),
            SearchStrategy::Lsh(cfg) => Box::new(LshSearch::new(*cfg)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Module, Value};

    fn fn_with_adds(m: &mut Module, name: &str, adds: usize) -> FuncId {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let mut v = Value::Param(0);
        for _ in 0..adds {
            v = b.add(v, b.const_i32(1));
        }
        b.ret(Some(v));
        f
    }

    #[test]
    fn exact_search_matches_direct_ranking() {
        let mut m = Module::new("m");
        let subject = fn_with_adds(&mut m, "s", 10);
        let ids: Vec<FuncId> =
            (0..8).map(|k| fn_with_adds(&mut m, &format!("f{k}"), 2 + k)).collect();
        let mut fps: HashMap<FuncId, Fingerprint> = HashMap::new();
        let mut idx = ExactSearch::new();
        for &f in ids.iter().chain([subject].iter()) {
            let fp = Fingerprint::of(&m, f);
            idx.insert(f, &fp);
            fps.insert(f, fp);
        }
        let via_index = idx.candidates(subject, &fps[&subject], &fps, 3, 0.0);
        let direct =
            rank_candidates(subject, &fps[&subject], fps.iter().map(|(&f, fp)| (f, fp)), 3, 0.0);
        assert_eq!(via_index, direct);
        assert_eq!(idx.len(), 9);
    }

    #[test]
    fn auto_resolves_by_module_size() {
        assert_eq!(SearchStrategy::Auto.resolve(AUTO_SEARCH_CROSSOVER - 1), SearchStrategy::Exact);
        assert_eq!(SearchStrategy::Auto.resolve(AUTO_SEARCH_CROSSOVER), SearchStrategy::lsh());
        // Concrete strategies never flip, whatever the module size.
        assert_eq!(SearchStrategy::Exact.resolve(1_000_000), SearchStrategy::Exact);
        assert_eq!(SearchStrategy::lsh().resolve(0), SearchStrategy::lsh());
    }

    #[test]
    fn strategy_builds_matching_impl() {
        assert_eq!(SearchStrategy::default(), SearchStrategy::Auto);
        let mut m = Module::new("m");
        let a = fn_with_adds(&mut m, "a", 5);
        let fp = Fingerprint::of(&m, a);
        for strategy in [SearchStrategy::Exact, SearchStrategy::lsh()] {
            let mut idx = strategy.build();
            assert!(idx.is_empty());
            idx.insert(a, &fp);
            assert_eq!(idx.len(), 1);
            idx.remove(a);
            assert!(idx.is_empty());
        }
    }
}
