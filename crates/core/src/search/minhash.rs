//! MinHash signatures over fingerprint feature multisets.
//!
//! A function's fingerprint (opcode frequencies + type frequencies, §IV)
//! is viewed as a *multiset of features*: one feature per occurrence of an
//! opcode or type, capped per key so one hot loop cannot dominate the
//! signature. The MinHash of that multiset estimates the Jaccard
//! similarity between two functions' feature multisets — an unbiased,
//! constant-size proxy for the paper's similarity estimate, cheap enough
//! to bucket (see [`super::lsh`]).
//!
//! Each permutation is simulated by re-mixing a per-feature base hash with
//! a per-permutation seed (the standard "one hash function, k seeds"
//! construction), so a signature costs `O(features × hashes)` multiplies
//! and no allocation beyond the signature itself.

use crate::fingerprint::Fingerprint;

/// Signature builder: `hashes` permutations, occurrences capped at
/// `occurrence_cap` per feature key. Per-permutation seeds are precomputed
/// once here — they depend only on the slot index, and recomputing them
/// per feature occurrence would double the hashing work of every
/// signature.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MinHasher {
    /// Number of hash permutations (signature length).
    pub hashes: usize,
    /// Per-key occurrence cap when expanding the multiset.
    pub occurrence_cap: u32,
    seeds: Vec<u64>,
}

/// splitmix64-style finalizer: the avalanche stage used to both derive
/// per-permutation seeds and mix features.
#[inline]
fn mix(mut z: u64) -> u64 {
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Feature-id tags keeping opcode and type features disjoint.
const TAG_OPCODE: u64 = 0x01 << 56;
const TAG_TYPE: u64 = 0x02 << 56;

impl MinHasher {
    /// Builder with the given signature length and occurrence cap.
    pub fn new(hashes: usize, occurrence_cap: u32) -> MinHasher {
        assert!(hashes > 0, "signature needs at least one hash");
        assert!(occurrence_cap > 0, "occurrence cap must be positive");
        let seeds =
            (0..hashes as u64).map(|i| mix(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1))).collect();
        MinHasher { hashes, occurrence_cap, seeds }
    }

    /// Width of one seed-lane chunk in [`MinHasher::signature`]: small
    /// enough that the running minima live in registers, wide enough for
    /// the compiler to auto-vectorize the branch-free inner loop.
    const LANES: usize = 8;

    /// Computes the MinHash signature of `fp`'s feature multiset.
    ///
    /// Structured for the cache, not the formula: the per-occurrence
    /// feature bases (`mix(feature | occ << 40)`) are materialized once
    /// up front — hoisting the base `mix` out of the seed loop — and the
    /// seed dimension is then processed in fixed-width chunks of
    /// `Self::LANES` slots, each chunk streaming over all bases with a
    /// register-resident block of running minima and a branch-free
    /// `min`. The multiset of `(base, seed)` pairs hashed is exactly the
    /// naive double loop's, and `min` is order-independent, so the
    /// signature is bit-identical to the reference form (see the parity
    /// test) — which matters because signatures persist in the
    /// `FunctionStore` and feed LSH bucketing.
    pub fn signature(&self, fp: &Fingerprint) -> Vec<u64> {
        let bases = self.feature_bases(fp);
        let mut sig = vec![u64::MAX; self.hashes];
        let mut slot_chunks = sig.chunks_exact_mut(Self::LANES);
        let mut seed_chunks = self.seeds.chunks_exact(Self::LANES);
        for (slots, seeds) in (&mut slot_chunks).zip(&mut seed_chunks) {
            let mut minima = [u64::MAX; Self::LANES];
            for &base in &bases {
                for lane in 0..Self::LANES {
                    let h = mix(base ^ seeds[lane]);
                    minima[lane] = minima[lane].min(h);
                }
            }
            slots.copy_from_slice(&minima);
        }
        // Signature lengths that are not a multiple of LANES finish with
        // a scalar tail.
        for (slot, &seed) in slot_chunks.into_remainder().iter_mut().zip(seed_chunks.remainder()) {
            let mut min = u64::MAX;
            for &base in &bases {
                min = min.min(mix(base ^ seed));
            }
            *slot = min;
        }
        sig
    }

    /// Expands `fp` into the per-occurrence feature base hashes, capped
    /// at `occurrence_cap` per feature key. The order is the reference
    /// absorb order (opcodes, then types); consumers must not depend on
    /// it — `signature` reduces with an order-independent `min`.
    fn feature_bases(&self, fp: &Fingerprint) -> Vec<u64> {
        let mut bases = Vec::new();
        let mut absorb = |feature: u64, count: u32| {
            for occ in 0..count.min(self.occurrence_cap) as u64 {
                bases.push(mix(feature | (occ << 40)));
            }
        };
        for (k, &count) in fp.opcode_freqs().iter().enumerate() {
            if count > 0 {
                absorb(TAG_OPCODE | k as u64, count);
            }
        }
        for (ty, count) in fp.type_freqs() {
            absorb(TAG_TYPE | ty.index() as u64, count);
        }
        bases
    }
}

/// Fraction of positions on which two signatures agree — the MinHash
/// estimate of the underlying feature-multiset Jaccard similarity.
pub fn estimated_jaccard(a: &[u64], b: &[u64]) -> f64 {
    assert_eq!(a.len(), b.len(), "signatures must have equal length");
    if a.is_empty() {
        return 0.0;
    }
    let agree = a.iter().zip(b).filter(|(x, y)| x == y).count();
    agree as f64 / a.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Module, Value};

    fn chain_fn(m: &mut Module, name: &str, adds: usize, muls: usize) -> Fingerprint {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..adds {
            v = b.add(v, b.const_i32(1));
        }
        for _ in 0..muls {
            v = b.mul(v, b.const_i32(3));
        }
        b.ret(Some(v));
        Fingerprint::of(m, f)
    }

    #[test]
    fn identical_fingerprints_identical_signatures() {
        let mut m = Module::new("m");
        let fa = chain_fn(&mut m, "a", 6, 2);
        let fb = chain_fn(&mut m, "b", 6, 2);
        let h = MinHasher::new(32, 8);
        assert_eq!(h.signature(&fa), h.signature(&fb));
        assert_eq!(estimated_jaccard(&h.signature(&fa), &h.signature(&fb)), 1.0);
    }

    #[test]
    fn similar_beats_dissimilar() {
        let mut m = Module::new("m");
        let subject = chain_fn(&mut m, "s", 10, 2);
        let near = chain_fn(&mut m, "near", 9, 2);
        let far = chain_fn(&mut m, "far", 1, 12);
        let h = MinHasher::new(64, 8);
        let ss = h.signature(&subject);
        let sn = h.signature(&near);
        let sf = h.signature(&far);
        assert!(
            estimated_jaccard(&ss, &sn) > estimated_jaccard(&ss, &sf),
            "near {} vs far {}",
            estimated_jaccard(&ss, &sn),
            estimated_jaccard(&ss, &sf)
        );
    }

    #[test]
    fn signatures_are_deterministic() {
        let mut m = Module::new("m");
        let fa = chain_fn(&mut m, "a", 5, 5);
        let h = MinHasher::new(16, 4);
        assert_eq!(h.signature(&fa), h.signature(&fa));
    }

    /// The reference signature: the naive `occurrences × seeds` double
    /// loop the lane-chunked `signature` restructures. Kept verbatim so
    /// the parity tests pin the restructuring to the historical bits —
    /// signatures persist on disk (`FunctionStore`) and feed LSH
    /// bucketing, so any drift would silently change merge decisions.
    fn reference_signature(h: &MinHasher, fp: &Fingerprint) -> Vec<u64> {
        let mut sig = vec![u64::MAX; h.hashes];
        let seeds: Vec<u64> = (0..h.hashes as u64)
            .map(|i| mix(0x9e37_79b9_7f4a_7c15u64.wrapping_mul(i + 1)))
            .collect();
        let mut absorb = |feature: u64, count: u32| {
            for occ in 0..count.min(h.occurrence_cap) as u64 {
                let base = mix(feature | (occ << 40));
                for (slot, &seed) in sig.iter_mut().zip(&seeds) {
                    let hash = mix(base ^ seed);
                    if hash < *slot {
                        *slot = hash;
                    }
                }
            }
        };
        for (k, &count) in fp.opcode_freqs().iter().enumerate() {
            if count > 0 {
                absorb(TAG_OPCODE | k as u64, count);
            }
        }
        for (ty, count) in fp.type_freqs() {
            absorb(TAG_TYPE | ty.index() as u64, count);
        }
        sig
    }

    #[test]
    fn lane_chunked_signature_matches_reference() {
        let mut m = Module::new("m");
        let fps = [
            chain_fn(&mut m, "a", 6, 2),
            chain_fn(&mut m, "b", 0, 1),
            chain_fn(&mut m, "c", 40, 17), // over the occurrence cap
            chain_fn(&mut m, "d", 1, 0),
        ];
        // Lengths off the LANES grid (tail loop), on it, and below it.
        for hashes in [1, 7, 8, 16, 128, 130] {
            for cap in [1, 4, 64] {
                let h = MinHasher::new(hashes, cap);
                for fp in &fps {
                    assert_eq!(
                        h.signature(fp),
                        reference_signature(&h, fp),
                        "hashes={hashes} cap={cap}"
                    );
                }
            }
        }
    }

    #[test]
    fn empty_fingerprint_is_all_max() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![]);
        let f = m.create_function("decl", fn_ty);
        let fp = Fingerprint::of(&m, f);
        let h = MinHasher::new(8, 4);
        assert!(h.signature(&fp).iter().all(|&x| x == u64::MAX));
    }
}
