//! A maintained index of direct call/invoke sites per callee.
//!
//! The profitability model's δ term needs the number of call sites of
//! each original function ([`crate::thunks::count_call_sites`]), which
//! scans every instruction of every live function — `O(module)` per
//! merge attempt, and the single largest cost of a pass on large modules
//! (measured: ~1 ms per attempt on a 1 000-function swarm, growing
//! linearly with module size). [`CallSiteIndex`] keeps the same counts
//! incrementally: build once, then refresh only the functions a commit
//! actually touched. Queries are `O(1)` and return exactly what
//! `count_call_sites` would.
//!
//! The index tracks *committed* module state. A freshly generated merge
//! candidate that has not been committed is intentionally not part of the
//! index; [`crate::profitability::evaluate_indexed`] accounts for its
//! outgoing calls separately so the combined counts match a direct scan
//! of the module mid-evaluation.

use fmsa_ir::{FuncId, Function, Module, Opcode, Value};
use std::collections::HashMap;

/// Per-callee direct call-site counts, maintained incrementally.
#[derive(Debug, Clone, Default)]
pub struct CallSiteIndex {
    /// callee → total direct call/invoke sites across live functions.
    counts: HashMap<FuncId, usize>,
    /// caller → its per-callee site counts (the contribution currently
    /// folded into `counts`, so refreshes can diff).
    outgoing: HashMap<FuncId, HashMap<FuncId, usize>>,
    /// callee → the callers currently contributing sites — the reverse
    /// edge set the partitioned call-site rewrite partitions over
    /// ([`crate::thunks::RewritePlan`]). Kept in lockstep with
    /// `outgoing`; the value is the same per-caller count.
    incoming: HashMap<FuncId, HashMap<FuncId, usize>>,
}

/// Scans one function body for direct call/invoke sites, per callee —
/// the per-function slice of [`crate::thunks::count_call_sites`].
pub fn outgoing_calls(func: &Function) -> HashMap<FuncId, usize> {
    let mut out: HashMap<FuncId, usize> = HashMap::new();
    for iid in func.inst_ids() {
        let inst = func.inst(iid);
        if matches!(inst.opcode, Opcode::Call | Opcode::Invoke) {
            if let Some(&Value::Func(callee)) = inst.operands.first() {
                *out.entry(callee).or_insert(0) += 1;
            }
        }
    }
    out
}

impl CallSiteIndex {
    /// Builds the index over every live function of `module`.
    pub fn build(module: &Module) -> CallSiteIndex {
        let mut idx = CallSiteIndex::default();
        for f in module.func_ids() {
            idx.refresh(module, f);
        }
        idx
    }

    /// Direct call/invoke sites of `callee` across the indexed functions;
    /// equals `count_call_sites(module, callee)` for committed state.
    pub fn count(&self, callee: FuncId) -> usize {
        self.counts.get(&callee).copied().unwrap_or(0)
    }

    /// The live functions with at least one direct call/invoke of
    /// `callee`, in ascending [`FuncId`] order (module insertion order —
    /// the order a full-module scan would visit them). `O(callers)`.
    pub fn callers_of(&self, callee: FuncId) -> Vec<FuncId> {
        let mut out: Vec<FuncId> =
            self.incoming.get(&callee).map(|m| m.keys().copied().collect()).unwrap_or_default();
        out.sort_unstable();
        out
    }

    /// Re-scans `caller`'s body and folds the difference into the counts.
    /// Call after a function body changed (thunked original, rewritten
    /// call sites) or was added (committed merged function).
    pub fn refresh(&mut self, module: &Module, caller: FuncId) {
        self.retract(caller);
        let fresh = outgoing_calls(module.func(caller));
        for (&callee, &n) in &fresh {
            *self.counts.entry(callee).or_insert(0) += n;
            self.incoming.entry(callee).or_default().insert(caller, n);
        }
        if !fresh.is_empty() {
            self.outgoing.insert(caller, fresh);
        }
    }

    /// Records that `caller`'s body is (or is about to be) a thunk whose
    /// only outgoing call targets `target` — the exact contribution
    /// [`CallSiteIndex::refresh`] would compute from a built thunk
    /// ([`crate::thunks::make_thunk`] emits one call plus a return),
    /// without reading the body. The pipeline's batched commit path uses
    /// this to keep the index in lockstep with the *planned* module
    /// state while the body replacement itself is deferred to the batch
    /// flush.
    pub fn set_thunk(&mut self, caller: FuncId, target: FuncId) {
        self.retract(caller);
        *self.counts.entry(target).or_insert(0) += 1;
        self.incoming.entry(target).or_default().insert(caller, 1);
        self.outgoing.insert(caller, HashMap::from([(target, 1)]));
    }

    /// Removes `caller`'s contribution (call when the function is deleted
    /// from the module). Its own count entry is dropped too.
    pub fn remove(&mut self, caller: FuncId) {
        self.retract(caller);
        self.counts.remove(&caller);
        self.incoming.remove(&caller);
    }

    fn retract(&mut self, caller: FuncId) {
        if let Some(old) = self.outgoing.remove(&caller) {
            for (callee, n) in old {
                if let Some(c) = self.counts.get_mut(&callee) {
                    *c = c.saturating_sub(n);
                }
                if let Some(inc) = self.incoming.get_mut(&callee) {
                    inc.remove(&caller);
                    if inc.is_empty() {
                        self.incoming.remove(&callee);
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::thunks::count_call_sites;
    use fmsa_ir::{FuncBuilder, Value};

    /// callers[k] calls `callee` k times; `callee` also calls itself once.
    fn call_module() -> (Module, FuncId, Vec<FuncId>) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let callee = m.create_function("callee", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, callee);
            let e = b.block("entry");
            b.switch_to(e);
            let r = b.call(callee, vec![Value::Param(0)]);
            b.ret(Some(r));
        }
        let mut callers = Vec::new();
        for k in 0..3usize {
            let f = m.create_function(format!("caller{k}"), fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for _ in 0..k {
                v = b.call(callee, vec![v]);
            }
            b.ret(Some(v));
            callers.push(f);
        }
        (m, callee, callers)
    }

    #[test]
    fn build_matches_direct_scan() {
        let (m, callee, callers) = call_module();
        let idx = CallSiteIndex::build(&m);
        assert_eq!(idx.count(callee), count_call_sites(&m, callee));
        assert_eq!(idx.count(callee), 4, "1 self-call + 0 + 1 + 2");
        for &c in &callers {
            assert_eq!(idx.count(c), 0);
        }
    }

    #[test]
    fn refresh_tracks_body_changes() {
        let (mut m, callee, callers) = call_module();
        let mut idx = CallSiteIndex::build(&m);
        // Rewrite caller2's body to drop its calls.
        m.func_mut(callers[2]).clear_body();
        let e = m.func_mut(callers[2]).add_block("entry");
        let void = m.types.void();
        m.func_mut(callers[2])
            .append_inst(e, fmsa_ir::Inst::new(Opcode::Ret, void, vec![Value::Param(0)]));
        idx.refresh(&m, callers[2]);
        assert_eq!(idx.count(callee), count_call_sites(&m, callee));
        assert_eq!(idx.count(callee), 2);
    }

    #[test]
    fn remove_drops_contribution_and_entry() {
        let (mut m, callee, callers) = call_module();
        let mut idx = CallSiteIndex::build(&m);
        m.remove_function(callers[1]);
        idx.remove(callers[1]);
        assert_eq!(idx.count(callee), count_call_sites(&m, callee));
        assert_eq!(idx.count(callee), 3);
        assert_eq!(idx.count(callers[1]), 0);
    }

    #[test]
    fn callers_of_tracks_reverse_edges_in_module_order() {
        let (mut m, callee, callers) = call_module();
        let mut idx = CallSiteIndex::build(&m);
        // caller0 makes no calls; the callee calls itself.
        assert_eq!(idx.callers_of(callee), vec![callee, callers[1], callers[2]]);
        assert!(idx.callers_of(callers[0]).is_empty());
        m.remove_function(callers[1]);
        idx.remove(callers[1]);
        assert_eq!(idx.callers_of(callee), vec![callee, callers[2]]);
        // Dropping caller2's calls removes its reverse edge on refresh.
        m.func_mut(callers[2]).clear_body();
        let e = m.func_mut(callers[2]).add_block("entry");
        let void = m.types.void();
        m.func_mut(callers[2])
            .append_inst(e, fmsa_ir::Inst::new(Opcode::Ret, void, vec![Value::Param(0)]));
        idx.refresh(&m, callers[2]);
        assert_eq!(idx.callers_of(callee), vec![callee]);
    }

    #[test]
    fn set_thunk_matches_refresh_of_built_thunk() {
        let (mut m, callee, callers) = call_module();
        // Predicted contribution, set before the body changes...
        let mut predicted = CallSiteIndex::build(&m);
        predicted.set_thunk(callers[2], callee);
        // ...must equal a refresh after actually building the thunk body.
        m.func_mut(callers[2]).clear_body();
        let e = m.func_mut(callers[2]).add_block("entry");
        let void = m.types.void();
        let call = m
            .func_mut(callers[2])
            .append_inst(e, fmsa_ir::Inst::new(Opcode::Call, void, vec![Value::Func(callee)]));
        m.func_mut(callers[2])
            .append_inst(e, fmsa_ir::Inst::new(Opcode::Ret, void, vec![Value::Inst(call)]));
        let mut rescanned = CallSiteIndex::build(&m);
        rescanned.refresh(&m, callers[2]);
        assert_eq!(predicted.count(callee), rescanned.count(callee));
        assert_eq!(predicted.callers_of(callee), rescanned.callers_of(callee));
        // caller2's two old calls were retracted, one thunk call added.
        assert_eq!(predicted.count(callee), 3);
    }

    #[test]
    fn refresh_is_idempotent() {
        let (m, callee, _) = call_module();
        let mut idx = CallSiteIndex::build(&m);
        for f in m.func_ids() {
            idx.refresh(&m, f);
            idx.refresh(&m, f);
        }
        assert_eq!(idx.count(callee), count_call_sites(&m, callee));
    }
}
