//! Deterministic fault injection for the merge pipeline.
//!
//! A [`FaultPlan`] forces failures — worker panics, verifier rejections,
//! poisoned scratch modules — at named pipeline sites, standing in for
//! the real bugs the fault-isolation machinery exists to survive. The
//! plan is a pure function of its seed and the *names* of the function
//! pair at each site, so the same pairs fault at every thread count,
//! batch size, and speculation depth: the quarantine set a faulted run
//! produces is reproducible from `(seed, rate, sites)` alone.
//!
//! Plans come from three places: explicit construction ([`FaultPlan::new`],
//! used by tests and `experiments faults`), a spec string
//! ([`FaultPlan::parse`]), or the `FMSA_FAULTS` environment variable
//! ([`FaultPlan::from_env`], honoured by `fmsa_opt`). The spec grammar is
//! comma-separated `key=value` fields:
//!
//! ```text
//! FMSA_FAULTS="seed=7,rate_ppm=20000,sites=align|codegen|verify|scratch"
//! FMSA_FAULTS="seed=3,rate_ppm=50000,sites=store-write|store-fsync|store-rename"
//! ```
//!
//! The `store-*` sites target the persistence path instead of the merge
//! pipeline: they are consulted by [`crate::store::FunctionStore`] on
//! every log append, fsync, and compaction rename, keyed by a
//! monotonically increasing operation number — so a faulted operation
//! is deterministic for a given seed, yet a *retry* (a later operation)
//! can succeed, which is how real transient I/O errors behave.
//!
//! See `docs/robustness.md` for what each site forces and how the
//! pipeline degrades under it.

use std::fmt;

/// A pipeline site where a [`FaultPlan`] can force a failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultSite {
    /// Panic inside sequence alignment (prepare workers *and* the
    /// commit stage's inline recompute — the fault follows the pair, not
    /// the thread, so quarantine decisions stay thread-independent).
    Align,
    /// Panic inside merge code generation (speculative build and the
    /// authoritative inline path alike).
    Codegen,
    /// The merged body is reported invalid by the verifier even when it
    /// is well-formed.
    Verify,
    /// The speculative scratch body is corrupted after a successful
    /// build — the commit stage must catch it by re-verification and
    /// degrade to inline codegen.
    ScratchPoison,
    /// A store log append fails with an I/O error before any byte is
    /// written (the record is atomically absent, standing in for ENOSPC
    /// or a pulled disk).
    StoreWrite,
    /// A store fsync fails after the bytes were handed to the kernel —
    /// the durability acknowledgement is withheld, not the data.
    StoreFsync,
    /// The atomic rename that publishes a compacted store fails; the old
    /// log must remain the authoritative one.
    StoreRename,
}

impl FaultSite {
    /// Every site, in declaration order.
    pub const ALL: [FaultSite; 7] = [
        FaultSite::Align,
        FaultSite::Codegen,
        FaultSite::Verify,
        FaultSite::ScratchPoison,
        FaultSite::StoreWrite,
        FaultSite::StoreFsync,
        FaultSite::StoreRename,
    ];

    /// Stable lower-case name, used by the spec grammar and reports.
    pub fn name(self) -> &'static str {
        match self {
            FaultSite::Align => "align",
            FaultSite::Codegen => "codegen",
            FaultSite::Verify => "verify",
            FaultSite::ScratchPoison => "scratch",
            FaultSite::StoreWrite => "store-write",
            FaultSite::StoreFsync => "store-fsync",
            FaultSite::StoreRename => "store-rename",
        }
    }

    /// Parses a site name as written in a spec string.
    pub fn from_name(s: &str) -> Option<FaultSite> {
        FaultSite::ALL.into_iter().find(|site| site.name() == s)
    }

    fn bit(self) -> u32 {
        match self {
            FaultSite::Align => 1,
            FaultSite::Codegen => 2,
            FaultSite::Verify => 4,
            FaultSite::ScratchPoison => 8,
            FaultSite::StoreWrite => 16,
            FaultSite::StoreFsync => 32,
            FaultSite::StoreRename => 64,
        }
    }
}

impl fmt::Display for FaultSite {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// A deterministic, seed-keyed plan of injected faults.
///
/// The default plan is disabled (no sites, rate zero) and costs one
/// branch per query, so it can sit on the pipeline's hot path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// Reproducer seed: re-running with the same seed (and rate/sites)
    /// re-faults the same pairs.
    pub seed: u64,
    /// Injection probability per `(site, pair)`, in parts per million.
    pub rate_ppm: u32,
    sites: u32,
}

impl FaultPlan {
    /// A plan that never fires.
    pub fn disabled() -> FaultPlan {
        FaultPlan::default()
    }

    /// A plan firing at `rate_ppm` per pair on each of `sites`.
    pub fn new(seed: u64, rate_ppm: u32, sites: &[FaultSite]) -> FaultPlan {
        let mask = sites.iter().fold(0, |m, s| m | s.bit());
        FaultPlan { seed, rate_ppm, sites: mask }
    }

    /// Whether this plan can fire at all.
    pub fn is_active(&self) -> bool {
        self.sites != 0 && self.rate_ppm > 0
    }

    /// Whether `site` is enabled.
    pub fn enables(&self, site: FaultSite) -> bool {
        self.sites & site.bit() != 0
    }

    /// Whether the plan injects a fault at `site` for the function pair
    /// `(a, b)`. Symmetric in `a`/`b` (the pair may be revisited with
    /// roles swapped) and independent of thread count, batch size, and
    /// visit order.
    pub fn fires(&self, site: FaultSite, a: &str, b: &str) -> bool {
        if self.rate_ppm == 0 || !self.enables(site) {
            return false;
        }
        let (x, y) = if a <= b { (a, b) } else { (b, a) };
        let mut h = 0xcbf2_9ce4_8422_2325u64 ^ self.seed;
        for chunk in [site.name().as_bytes(), b"\0", x.as_bytes(), b"\0", y.as_bytes()] {
            for &byte in chunk {
                h ^= byte as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
        }
        // Final avalanche so low bits depend on every input byte.
        h ^= h >> 33;
        h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
        h ^= h >> 33;
        (h % 1_000_000) < self.rate_ppm as u64
    }

    /// Parses a spec string (`seed=7,rate_ppm=20000,sites=align|verify`).
    /// Unknown keys and malformed values are errors; an empty string is
    /// the disabled plan.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed field.
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan::disabled();
        for field in spec.split(',').map(str::trim).filter(|f| !f.is_empty()) {
            let (key, value) =
                field.split_once('=').ok_or_else(|| format!("field {field:?} is not key=value"))?;
            match key.trim() {
                "seed" => {
                    plan.seed =
                        value.trim().parse().map_err(|_| format!("seed {value:?} is not a u64"))?;
                }
                "rate_ppm" => {
                    plan.rate_ppm = value
                        .trim()
                        .parse()
                        .map_err(|_| format!("rate_ppm {value:?} is not a u32"))?;
                }
                "sites" => {
                    for name in value.split(['|', '+']).map(str::trim).filter(|s| !s.is_empty()) {
                        let site = FaultSite::from_name(name)
                            .ok_or_else(|| format!("unknown fault site {name:?}"))?;
                        plan.sites |= site.bit();
                    }
                }
                other => return Err(format!("unknown fault-plan key {other:?}")),
            }
        }
        Ok(plan)
    }

    /// Reads a plan from the `FMSA_FAULTS` environment variable. `None`
    /// when unset or empty; a malformed spec is reported on stderr and
    /// treated as unset (an injection tool must never abort the run it
    /// is meant to stress).
    pub fn from_env() -> Option<FaultPlan> {
        let spec = std::env::var("FMSA_FAULTS").ok()?;
        if spec.trim().is_empty() {
            return None;
        }
        match FaultPlan::parse(&spec) {
            Ok(plan) => Some(plan),
            Err(e) => {
                eprintln!("FMSA_FAULTS ignored: {e}");
                None
            }
        }
    }
}

/// Message prefix of every panic a [`FaultPlan`] injects.
pub const INJECTED_PANIC_PREFIX: &str = "injected fault:";

/// Installs (once per process) a panic hook that suppresses the default
/// stderr report for *injected* panics — they are caught and quarantined
/// by design, and a fault-injection run would otherwise print thousands
/// of them. Genuine panics still report through the previous hook.
pub fn silence_injected_panics() {
    use std::sync::Once;
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            let msg = info
                .payload()
                .downcast_ref::<String>()
                .map(String::as_str)
                .or_else(|| info.payload().downcast_ref::<&str>().copied())
                .unwrap_or("");
            if !msg.starts_with(INJECTED_PANIC_PREFIX) {
                prev(info);
            }
        }));
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_plan_never_fires() {
        let plan = FaultPlan::disabled();
        assert!(!plan.is_active());
        for site in FaultSite::ALL {
            assert!(!plan.fires(site, "a", "b"));
        }
    }

    #[test]
    fn fires_is_deterministic_and_symmetric() {
        let plan = FaultPlan::new(7, 500_000, &FaultSite::ALL);
        for site in FaultSite::ALL {
            for (a, b) in [("f1", "f2"), ("merged.x.y", "fam3"), ("a", "a")] {
                assert_eq!(plan.fires(site, a, b), plan.fires(site, a, b));
                assert_eq!(plan.fires(site, a, b), plan.fires(site, b, a));
            }
        }
    }

    #[test]
    fn rate_controls_frequency() {
        let never = FaultPlan::new(1, 0, &FaultSite::ALL);
        let always = FaultPlan::new(1, 1_000_000, &FaultSite::ALL);
        let half = FaultPlan::new(1, 500_000, &[FaultSite::Align]);
        let mut hits = 0;
        for k in 0..1000 {
            let a = format!("f{k}");
            assert!(!never.fires(FaultSite::Align, &a, "g"));
            assert!(always.fires(FaultSite::Align, &a, "g"));
            hits += half.fires(FaultSite::Align, &a, "g") as usize;
        }
        assert!((300..700).contains(&hits), "≈50% expected, got {hits}/1000");
    }

    #[test]
    fn sites_are_independent() {
        let plan = FaultPlan::new(9, 1_000_000, &[FaultSite::Verify]);
        assert!(plan.fires(FaultSite::Verify, "a", "b"));
        assert!(!plan.fires(FaultSite::Align, "a", "b"));
        assert!(!plan.fires(FaultSite::Codegen, "a", "b"));
        assert!(!plan.fires(FaultSite::ScratchPoison, "a", "b"));
    }

    #[test]
    fn seed_changes_the_faulted_set() {
        let a = FaultPlan::new(1, 200_000, &[FaultSite::Align]);
        let b = FaultPlan::new(2, 200_000, &[FaultSite::Align]);
        let diverges = (0..200).any(|k| {
            let name = format!("f{k}");
            a.fires(FaultSite::Align, &name, "g") != b.fires(FaultSite::Align, &name, "g")
        });
        assert!(diverges, "different seeds must fault different pairs");
    }

    #[test]
    fn store_sites_parse_and_stay_independent() {
        let plan = FaultPlan::parse("seed=1,rate_ppm=1000000,sites=store-write|store-rename")
            .expect("parses");
        assert!(plan.enables(FaultSite::StoreWrite));
        assert!(plan.enables(FaultSite::StoreRename));
        assert!(!plan.enables(FaultSite::StoreFsync));
        assert!(!plan.enables(FaultSite::Align));
        assert!(plan.fires(FaultSite::StoreWrite, "op", "1"));
        assert!(!plan.fires(FaultSite::StoreFsync, "op", "1"));
    }

    #[test]
    fn parse_round_trips() {
        let plan =
            FaultPlan::parse("seed=42, rate_ppm=20000, sites=align|scratch").expect("parses");
        assert_eq!(plan.seed, 42);
        assert_eq!(plan.rate_ppm, 20_000);
        assert!(plan.enables(FaultSite::Align));
        assert!(plan.enables(FaultSite::ScratchPoison));
        assert!(!plan.enables(FaultSite::Verify));
        assert_eq!(FaultPlan::parse("").expect("empty is disabled"), FaultPlan::disabled());
        assert!(FaultPlan::parse("sites=bogus").is_err());
        assert!(FaultPlan::parse("seed=x").is_err());
        assert!(FaultPlan::parse("nonsense").is_err());
    }
}
