//! Code generation for merged functions (paper §III-E).
//!
//! Two passes over the aligned sequence, exactly as the paper describes:
//! "The first pass creates the basic blocks and instructions. The second
//! assigns the correct operands to the instructions and connects the basic
//! blocks. A two-passes approach is required in order to handle loops, due
//! to cyclic data dependencies."
//!
//! Matched entries are cloned once and shared; maximal runs of unmatched
//! entries become *divergent regions*: each side's entries are cloned into
//! a guarded chain of blocks and a `condbr` on the function identifier
//! selects the chain, producing the diamond shapes the paper describes.
//! Operand mismatches in matched instructions become `select func_id`
//! instructions (or selector blocks for label operands, with landing-pad
//! hoisting when the targets are landing blocks).
//!
//! After operand assignment a *register demotion* fix-up restores SSA
//! dominance: values defined on one side's chain but consumed by shared
//! code are demoted to stack slots, mirroring the memory-demotion strategy
//! the original CGO'19 implementation relied on (later replaced by SalSSA).

use super::{MergeError, ParamMerge, RetInfo};
use crate::linearize::Entry;
use fmsa_align::{Alignment, Step};
use fmsa_ir::{
    cfg, passes, BlockId, ExtraData, FuncId, Function, Inst, InstId, Module, Opcode, TyId, Type,
    Value,
};
use std::collections::HashMap;

/// Everything [`generate`] needs.
#[derive(Debug)]
pub struct CodegenInput {
    /// First function (the `func_id == true` side).
    pub f1: FuncId,
    /// Second function (the `func_id == false` side).
    pub f2: FuncId,
    /// Linearization of `f1`.
    pub seq1: Vec<Entry>,
    /// Linearization of `f2`.
    pub seq2: Vec<Entry>,
    /// Alignment of the two sequences.
    pub alignment: Alignment,
    /// Merged parameter list.
    pub params: ParamMerge,
    /// Merged return type.
    pub ret: RetInfo,
    /// Symbol name for the merged function.
    pub name: String,
    /// Reorder commutative operands to minimize selects.
    pub reorder_commutative: bool,
}

/// A maximal run of aligned columns.
#[derive(Debug)]
enum Seg {
    Match(Vec<(Entry, Entry)>),
    Diverge { left: Vec<Entry>, right: Vec<Entry> },
}

fn build_segments(alignment: &Alignment, seq1: &[Entry], seq2: &[Entry]) -> Vec<Seg> {
    let mut segs: Vec<Seg> = Vec::new();
    for step in &alignment.steps {
        match *step {
            Step::Both { i, j, matched: true } => {
                if let Some(Seg::Match(pairs)) = segs.last_mut() {
                    pairs.push((seq1[i], seq2[j]));
                } else {
                    segs.push(Seg::Match(vec![(seq1[i], seq2[j])]));
                }
            }
            Step::Both { i, j, matched: false } => {
                push_diverge(&mut segs, Some(seq1[i]), Some(seq2[j]));
            }
            Step::Left(i) => push_diverge(&mut segs, Some(seq1[i]), None),
            Step::Right(j) => push_diverge(&mut segs, None, Some(seq2[j])),
        }
    }
    segs
}

fn push_diverge(segs: &mut Vec<Seg>, l: Option<Entry>, r: Option<Entry>) {
    if let Some(Seg::Diverge { left, right }) = segs.last_mut() {
        left.extend(l);
        right.extend(r);
        return;
    }
    segs.push(Seg::Diverge { left: l.into_iter().collect(), right: r.into_iter().collect() });
}

/// Record of one cloned instruction for the operand pass.
#[derive(Debug, Clone, Copy)]
struct CloneRec {
    id: InstId,
    src1: Option<InstId>,
    src2: Option<InstId>,
}

struct Codegen {
    f1c: Function,
    f2c: Function,
    mf: FuncId,
    map1: HashMap<Value, Value>,
    map2: HashMap<Value, Value>,
    clones: Vec<CloneRec>,
    params: ParamMerge,
    ret: RetInfo,
    func_id: Option<Value>,
    reorder_commutative: bool,
    selector_blocks: HashMap<(BlockId, BlockId), BlockId>,
    /// CSE cache for operand selects: clones are fixed up in creation
    /// (= block-position) order, so a select created for an earlier
    /// instruction of the same block dominates later ones.
    select_cache: HashMap<(BlockId, Value, Value), Value>,
}

/// Generates the merged function, returning its id. On any failure the
/// partially built function is removed from the module.
///
/// # Errors
///
/// [`MergeError::InvalidCodegen`] if the produced function fails
/// verification (a bug guard, asserted against by tests).
pub fn generate(module: &mut Module, input: CodegenInput) -> Result<FuncId, MergeError> {
    let f1c = module.func(input.f1).clone();
    let f2c = module.func(input.f2).clone();
    let fn_ty = module.types.func(input.ret.base, input.params.merged_tys.clone());
    let mf = module.create_function(input.name.clone(), fn_ty);
    let func_id = input.params.has_func_id.then_some(Value::Param(0));
    let mut cg = Codegen {
        f1c,
        f2c,
        mf,
        map1: HashMap::new(),
        map2: HashMap::new(),
        clones: Vec::new(),
        params: input.params,
        ret: input.ret,
        func_id,
        reorder_commutative: input.reorder_commutative,
        selector_blocks: HashMap::new(),
        select_cache: HashMap::new(),
    };
    let segs = build_segments(&input.alignment, &input.seq1, &input.seq2);
    let result = cg.pass1(module, &segs).and_then(|()| cg.pass2(module)).and_then(|()| {
        fix_dominance(module, mf);
        passes::thread_trivial_blocks(module.func_mut(mf));
        passes::remove_unreachable_blocks(module.func_mut(mf));
        let errs = fmsa_ir::verify_function(module, mf);
        if errs.is_empty() {
            Ok(())
        } else {
            Err(MergeError::InvalidCodegen(format!("{}", errs[0])))
        }
    });
    match result {
        Ok(()) => Ok(mf),
        Err(e) => {
            module.remove_function(mf);
            Err(e)
        }
    }
}

impl Codegen {
    // ----- pass 1: blocks and instruction skeletons ------------------------

    fn pass1(&mut self, module: &mut Module, segs: &[Seg]) -> Result<(), MergeError> {
        let entry = module.func_mut(self.mf).add_block("entry");
        let mut cur: Option<BlockId> = Some(entry);
        let mut pending: Vec<BlockId> = Vec::new();

        for seg in segs {
            match seg {
                Seg::Match(pairs) => {
                    for &(e1, e2) in pairs {
                        match (e1, e2) {
                            (Entry::Label(b1), Entry::Label(b2)) => {
                                let nb = module.func_mut(self.mf).add_block("m");
                                self.bridge(module, &mut cur, &mut pending, nb);
                                self.map1.insert(Value::Block(b1), Value::Block(nb));
                                self.map2.insert(Value::Block(b2), Value::Block(nb));
                                cur = Some(nb);
                            }
                            (Entry::Inst(i1), Entry::Inst(i2)) => {
                                let need_new = match cur {
                                    Some(c) => self.terminated(module, c),
                                    None => true,
                                };
                                if need_new {
                                    let nb = module.func_mut(self.mf).add_block("j");
                                    self.bridge(module, &mut cur, &mut pending, nb);
                                    cur = Some(nb);
                                }
                                let block = cur.expect("insertion block");
                                let skel = self.skeleton(self.f1c.inst(i1));
                                let cid = module.func_mut(self.mf).append_inst(block, skel);
                                self.map1.insert(Value::Inst(i1), Value::Inst(cid));
                                self.map2.insert(Value::Inst(i2), Value::Inst(cid));
                                self.clones.push(CloneRec {
                                    id: cid,
                                    src1: Some(i1),
                                    src2: Some(i2),
                                });
                            }
                            _ => {
                                return Err(MergeError::InvalidCodegen(
                                    "label aligned with instruction".into(),
                                ))
                            }
                        }
                    }
                }
                Seg::Diverge { left, right } => {
                    let bridge_needed = match cur {
                        Some(c) => !self.terminated(module, c),
                        None => false,
                    };
                    let (lentry, lpend) = self.build_chain(module, left, true, bridge_needed);
                    let (rentry, rpend) = self.build_chain(module, right, false, bridge_needed);
                    if bridge_needed {
                        let c = cur.expect("bridge implies current block");
                        let fid = self.func_id.ok_or_else(|| {
                            MergeError::InvalidCodegen(
                                "divergent region without function identifier".into(),
                            )
                        })?;
                        let void = module.types.void();
                        let (le, re) = (
                            lentry.expect("materialized left entry"),
                            rentry.expect("materialized right entry"),
                        );
                        module.func_mut(self.mf).append_inst(
                            c,
                            Inst::new(
                                Opcode::CondBr,
                                void,
                                vec![fid, Value::Block(le), Value::Block(re)],
                            ),
                        );
                    }
                    pending.extend(lpend);
                    pending.extend(rpend);
                    cur = None;
                }
            }
        }
        // Defensive: a well-formed input leaves no dangling control flow.
        if let Some(c) = cur {
            if !self.terminated(module, c) {
                let void = module.types.void();
                module
                    .func_mut(self.mf)
                    .append_inst(c, Inst::new(Opcode::Unreachable, void, vec![]));
            }
        }
        for b in pending {
            let void = module.types.void();
            module.func_mut(self.mf).append_inst(b, Inst::new(Opcode::Unreachable, void, vec![]));
        }
        Ok(())
    }

    /// Builds one side's chain of guarded blocks. Returns the entry block
    /// (if materialized) and the blocks left without terminators.
    fn build_chain(
        &mut self,
        module: &mut Module,
        entries: &[Entry],
        first_side: bool,
        bridge_needed: bool,
    ) -> (Option<BlockId>, Vec<BlockId>) {
        let mut entry: Option<BlockId> = None;
        let mut cb: Option<BlockId> = None;
        for &e in entries {
            match e {
                Entry::Label(b) => {
                    let nb = module.func_mut(self.mf).add_block("d");
                    if let Some(p) = cb {
                        if !self.terminated(module, p) {
                            let void = module.types.void();
                            module.func_mut(self.mf).append_inst(
                                p,
                                Inst::new(Opcode::Br, void, vec![Value::Block(nb)]),
                            );
                        }
                    }
                    let map = if first_side { &mut self.map1 } else { &mut self.map2 };
                    map.insert(Value::Block(b), Value::Block(nb));
                    entry.get_or_insert(nb);
                    cb = Some(nb);
                }
                Entry::Inst(i) => {
                    if cb.is_none() {
                        let nb = module.func_mut(self.mf).add_block("d");
                        entry.get_or_insert(nb);
                        cb = Some(nb);
                    }
                    let block = cb.expect("chain block");
                    let src = if first_side { &self.f1c } else { &self.f2c };
                    let skel = self.skeleton(src.inst(i));
                    let cid = module.func_mut(self.mf).append_inst(block, skel);
                    let map = if first_side { &mut self.map1 } else { &mut self.map2 };
                    map.insert(Value::Inst(i), Value::Inst(cid));
                    self.clones.push(CloneRec {
                        id: cid,
                        src1: first_side.then_some(i),
                        src2: (!first_side).then_some(i),
                    });
                }
            }
        }
        if entry.is_none() && bridge_needed {
            // Empty side of a diamond: a forwarding block to be wired to
            // the continuation (threaded away afterwards).
            let nb = module.func_mut(self.mf).add_block("skip");
            entry = Some(nb);
            cb = Some(nb);
        }
        let pending = match cb {
            Some(c) if !self.terminated(module, c) => vec![c],
            _ => Vec::new(),
        };
        (entry, pending)
    }

    fn bridge(
        &mut self,
        module: &mut Module,
        cur: &mut Option<BlockId>,
        pending: &mut Vec<BlockId>,
        to: BlockId,
    ) {
        let void = module.types.void();
        if let Some(c) = *cur {
            if !self.terminated(module, c) {
                module
                    .func_mut(self.mf)
                    .append_inst(c, Inst::new(Opcode::Br, void, vec![Value::Block(to)]));
            }
        }
        for b in pending.drain(..) {
            module
                .func_mut(self.mf)
                .append_inst(b, Inst::new(Opcode::Br, void, vec![Value::Block(to)]));
        }
    }

    fn terminated(&self, module: &Module, b: BlockId) -> bool {
        module.func(self.mf).terminator(b).is_some()
    }

    fn skeleton(&self, src: &Inst) -> Inst {
        Inst::with_extra(src.opcode, src.ty, Vec::new(), src.extra.clone())
    }

    // ----- pass 2: operands -------------------------------------------------

    fn pass2(&mut self, module: &mut Module) -> Result<(), MergeError> {
        let clones = self.clones.clone();
        for rec in clones {
            match (rec.src1, rec.src2) {
                (Some(i1), Some(i2)) => self.fix_matched(module, rec.id, i1, i2)?,
                (Some(i1), None) => self.fix_single(module, rec.id, i1, true)?,
                (None, Some(i2)) => self.fix_single(module, rec.id, i2, false)?,
                (None, None) => unreachable!("clone without source"),
            }
        }
        Ok(())
    }

    fn resolve(&self, first_side: bool, v: Value) -> Result<Value, MergeError> {
        let (map, pmap) = if first_side {
            (&self.map1, &self.params.map1)
        } else {
            (&self.map2, &self.params.map2)
        };
        Ok(match v {
            Value::Inst(_) | Value::Block(_) => *map
                .get(&v)
                .ok_or_else(|| MergeError::InvalidCodegen(format!("unmapped operand {v:?}")))?,
            Value::Param(p) => Value::Param(pmap[p as usize] as u32),
            other => other,
        })
    }

    /// Type of `v` as seen by the original function of `first_side`.
    fn orig_ty(&self, module: &Module, first_side: bool, v: Value) -> Option<TyId> {
        let f = if first_side { &self.f1c } else { &self.f2c };
        match v {
            Value::Block(_) | Value::Func(_) => None,
            _ => Some(f.value_ty(v, &module.types)),
        }
    }

    /// Type of a merged value.
    fn merged_ty(&self, module: &Module, v: Value) -> Option<TyId> {
        match v {
            Value::Block(_) | Value::Func(_) => None,
            _ => Some(module.func(self.mf).value_ty(v, &module.types)),
        }
    }

    /// Inserts a lossless bitcast before `user` if `v`'s merged type
    /// differs from `want`.
    fn adapt(
        &self,
        module: &mut Module,
        user: InstId,
        v: Value,
        want: TyId,
    ) -> Result<Value, MergeError> {
        let Some(have) = self.merged_ty(module, v) else { return Ok(v) };
        if have == want {
            return Ok(v);
        }
        if !module.types.can_lossless_bitcast(have, want) {
            return Err(MergeError::InvalidCodegen(format!(
                "operand type {} not adaptable to {}",
                module.types.display(have),
                module.types.display(want)
            )));
        }
        let cast =
            module.func_mut(self.mf).insert_before(user, Inst::new(Opcode::BitCast, want, vec![v]));
        Ok(Value::Inst(cast))
    }

    fn fix_single(
        &mut self,
        module: &mut Module,
        cid: InstId,
        src: InstId,
        first_side: bool,
    ) -> Result<(), MergeError> {
        let (orig_ops, opcode) = {
            let f = if first_side { &self.f1c } else { &self.f2c };
            let inst = f.inst(src);
            (inst.operands.clone(), inst.opcode)
        };
        let mut new_ops = Vec::with_capacity(orig_ops.len());
        for &op in &orig_ops {
            let mapped = self.resolve(first_side, op)?;
            let adapted = match self.orig_ty(module, first_side, op) {
                Some(want) => self.adapt(module, cid, mapped, want)?,
                None => mapped,
            };
            new_ops.push(adapted);
        }
        if opcode == Opcode::Ret {
            new_ops = self.fix_ret_operands(module, cid, new_ops, first_side)?;
        }
        module.func_mut(self.mf).inst_mut(cid).operands = new_ops;
        Ok(())
    }

    fn fix_matched(
        &mut self,
        module: &mut Module,
        cid: InstId,
        i1: InstId,
        i2: InstId,
    ) -> Result<(), MergeError> {
        let (ops1, opcode, pred_commutes) = {
            let inst = self.f1c.inst(i1);
            let pc = inst.int_predicate().map(|p| p.is_commutative()).unwrap_or(false);
            (inst.operands.clone(), inst.opcode, pc)
        };
        let mut ops2 = self.f2c.inst(i2).operands.clone();
        // Commutative operand reordering (§III-E): swap the second
        // function's operands when that increases matches.
        let commutative = opcode.is_commutative() || (opcode == Opcode::ICmp && pred_commutes);
        if self.reorder_commutative && commutative && ops1.len() == 2 && ops2.len() == 2 {
            let score = |a: &Value, b: &Value, x: &Value, y: &Value| {
                let m1 = self.resolve(true, *a).ok() == self.resolve(false, *x).ok();
                let m2 = self.resolve(true, *b).ok() == self.resolve(false, *y).ok();
                m1 as usize + m2 as usize
            };
            let straight = score(&ops1[0], &ops1[1], &ops2[0], &ops2[1]);
            let swapped = score(&ops1[0], &ops1[1], &ops2[1], &ops2[0]);
            if swapped > straight {
                ops2.swap(0, 1);
            }
        }
        let mut new_ops = Vec::with_capacity(ops1.len());
        for (&o1, &o2) in ops1.iter().zip(&ops2) {
            let v1 = self.resolve(true, o1)?;
            let v2 = self.resolve(false, o2)?;
            if let (Value::Block(b1), Value::Block(b2)) = (v1, v2) {
                if b1 == b2 {
                    new_ops.push(v1);
                } else {
                    let sel = self.selector_block(module, b1, b2)?;
                    new_ops.push(Value::Block(sel));
                }
                continue;
            }
            if matches!(v1, Value::Func(_)) || matches!(v2, Value::Func(_)) {
                // Callees: equivalence guarantees both sides target the
                // same function.
                if v1 != v2 {
                    return Err(MergeError::InvalidCodegen(
                        "matched calls with different callees".into(),
                    ));
                }
                new_ops.push(v1);
                continue;
            }
            // Value operands: adapt both to the first function's view.
            let want = self
                .orig_ty(module, true, o1)
                .ok_or_else(|| MergeError::InvalidCodegen("untyped operand".into()))?;
            let a1 = self.adapt(module, cid, v1, want)?;
            let a2 = self.adapt(module, cid, v2, want)?;
            if a1 == a2 {
                new_ops.push(a1);
            } else {
                let fid = self.func_id.ok_or_else(|| {
                    MergeError::InvalidCodegen("operand select without function id".into())
                })?;
                let block = module.func(self.mf).inst(cid).parent;
                let key = (block, a1, a2);
                let sel = match self.select_cache.get(&key) {
                    Some(&v) => v,
                    None => {
                        let sel = module
                            .func_mut(self.mf)
                            .insert_before(cid, Inst::new(Opcode::Select, want, vec![fid, a1, a2]));
                        self.select_cache.insert(key, Value::Inst(sel));
                        Value::Inst(sel)
                    }
                };
                new_ops.push(sel);
            }
        }
        if opcode == Opcode::Ret {
            new_ops = self.fix_ret_operands(module, cid, new_ops, true)?;
        }
        module.func_mut(self.mf).inst_mut(cid).operands = new_ops;
        Ok(())
    }

    /// Converts a `ret`'s operand to the merged base return type (§III-E).
    fn fix_ret_operands(
        &mut self,
        module: &mut Module,
        cid: InstId,
        ops: Vec<Value>,
        first_side: bool,
    ) -> Result<Vec<Value>, MergeError> {
        let base = self.ret.base;
        if matches!(module.types.get(base), Type::Void) {
            return Ok(Vec::new());
        }
        match ops.first() {
            None => {
                // A void side merged with a value-returning one: the
                // call-sites of the void side discard the value.
                Ok(vec![Value::Undef(base)])
            }
            Some(&v) => {
                let have = self
                    .merged_ty(module, v)
                    .ok_or_else(|| MergeError::InvalidCodegen("untyped return value".into()))?;
                let casted = cast_chain(module, self.mf, cid, v, have, base)?;
                let _ = first_side;
                Ok(vec![casted])
            }
        }
    }

    /// "If the operands are labels ... we perform operand selection through
    /// divergent control flow, using a new basic block and a conditional
    /// branch on the function identifier. If the two labels represent
    /// landing blocks, we hoist the landing-pad instruction to the new
    /// common basic block" (§III-E).
    fn selector_block(
        &mut self,
        module: &mut Module,
        b1: BlockId,
        b2: BlockId,
    ) -> Result<BlockId, MergeError> {
        if let Some(&x) = self.selector_blocks.get(&(b1, b2)) {
            return Ok(x);
        }
        let fid = self.func_id.ok_or_else(|| {
            MergeError::InvalidCodegen("label selector without function id".into())
        })?;
        let void = module.types.void();
        let x = module.func_mut(self.mf).add_block("sel");
        let landing1 = module.func(self.mf).is_landing_block(b1);
        let landing2 = module.func(self.mf).is_landing_block(b2);
        if landing1 && landing2 {
            // Hoist one landing pad into the selector block, convert the
            // originals to normal blocks, and forward the pad value.
            let p1 = module.func(self.mf).block(b1).insts[0];
            let p2 = module.func(self.mf).block(b2).insts[0];
            let pad = module.func(self.mf).inst(p1).clone();
            let hoisted = module.func_mut(self.mf).append_inst(x, pad);
            module.func_mut(self.mf).replace_all_uses(Value::Inst(p1), Value::Inst(hoisted));
            module.func_mut(self.mf).replace_all_uses(Value::Inst(p2), Value::Inst(hoisted));
            module.func_mut(self.mf).remove_inst(p1);
            module.func_mut(self.mf).remove_inst(p2);
        } else if landing1 != landing2 {
            return Err(MergeError::InvalidCodegen(
                "selector between landing and normal block".into(),
            ));
        }
        module.func_mut(self.mf).append_inst(
            x,
            Inst::new(Opcode::CondBr, void, vec![fid, Value::Block(b1), Value::Block(b2)]),
        );
        self.selector_blocks.insert((b1, b2), x);
        Ok(x)
    }
}

/// Builds the cast chain `have -> base` before `user` (§III-E return-type
/// merging): lossless bitcast when widths agree, otherwise a zext through
/// an integer container of the wider width.
fn cast_chain(
    module: &mut Module,
    mf: FuncId,
    user: InstId,
    v: Value,
    have: TyId,
    want: TyId,
) -> Result<Value, MergeError> {
    if have == want {
        return Ok(v);
    }
    let ts_bitcastable = module.types.can_lossless_bitcast(have, want);
    if ts_bitcastable {
        let c = module.func_mut(mf).insert_before(user, Inst::new(Opcode::BitCast, want, vec![v]));
        return Ok(Value::Inst(c));
    }
    let (Some(sh), Some(sw)) = (module.types.bit_size(have), module.types.bit_size(want)) else {
        return Err(MergeError::InvalidCodegen("unsized return cast".into()));
    };
    if sh > sw {
        return Err(MergeError::InvalidCodegen("return cast must widen, not narrow".into()));
    }
    let int_h = module.types.int(sh as u32);
    let int_w = module.types.int(sw as u32);
    let mut cur = v;
    if have != int_h {
        let c =
            module.func_mut(mf).insert_before(user, Inst::new(Opcode::BitCast, int_h, vec![cur]));
        cur = Value::Inst(c);
    }
    if sh != sw {
        let c = module.func_mut(mf).insert_before(user, Inst::new(Opcode::ZExt, int_w, vec![cur]));
        cur = Value::Inst(c);
    }
    if want != int_w {
        let c =
            module.func_mut(mf).insert_before(user, Inst::new(Opcode::BitCast, want, vec![cur]));
        cur = Value::Inst(c);
    }
    Ok(cur)
}

/// How a `base -> want` call-site/thunk result conversion is built. One
/// classification shared by planning ([`prepare_cast_tys`]) and
/// execution ([`cast_back_in`]), so the set of container types the plan
/// interns can never drift from what the cast later looks up.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum CastShape {
    /// `base == want`: no instruction at all.
    Identity,
    /// Lossless bitcast: a single `bitcast`, no container types.
    Bitcast,
    /// Truncation through the integer containers `int(sb)` → `int(sw)`.
    Chain {
        /// Bit width of `base`.
        sb: u64,
        /// Bit width of `want`.
        sw: u64,
    },
}

/// Classifies the `base -> want` conversion [`cast_back_in`] would build.
///
/// # Errors
///
/// The unsized/widening rejections the cast itself raises.
pub(crate) fn classify_cast_back(
    types: &fmsa_ir::TypeStore,
    base: TyId,
    want: TyId,
) -> Result<CastShape, MergeError> {
    if base == want {
        return Ok(CastShape::Identity);
    }
    if types.can_lossless_bitcast(base, want) {
        return Ok(CastShape::Bitcast);
    }
    let (Some(sb), Some(sw)) = (types.bit_size(base), types.bit_size(want)) else {
        return Err(MergeError::InvalidCodegen("unsized return cast".into()));
    };
    if sb < sw {
        return Err(MergeError::InvalidCodegen("call-site cast must narrow, not widen".into()));
    }
    Ok(CastShape::Chain { sb, sw })
}

/// Interns the integer container types [`cast_back_in`] needs for a
/// `base -> want` conversion: `int(bits(base))` first, `int(bits(want))`
/// second — the exact order the historical lazy cast interned them, so a
/// planning step running this up front evolves the store identically. A
/// no-op (nothing interned) when the conversion is an identity or a
/// lossless bitcast.
///
/// # Errors
///
/// The same unsized/widening rejections the cast itself would raise.
pub(crate) fn prepare_cast_tys(
    types: &mut fmsa_ir::TypeStore,
    base: TyId,
    want: TyId,
) -> Result<(), MergeError> {
    if let CastShape::Chain { sb, sw } = classify_cast_back(types, base, want)? {
        types.int(sb as u32);
        types.int(sw as u32);
    }
    Ok(())
}

/// The reverse conversion of [`cast_chain`], used at call sites and
/// thunks: `base -> want` via truncation through integer containers.
/// Inserts before `user`, directly into a (possibly detached) function:
/// it only *reads* the type store, so the partitioned call-site rewrite
/// can run it on worker threads after [`prepare_cast_tys`] interned the
/// container types sequentially.
pub(crate) fn cast_back_in(
    f: &mut Function,
    types: &fmsa_ir::TypeStore,
    user: InstId,
    v: Value,
    base: TyId,
    want: TyId,
) -> Result<Value, MergeError> {
    let (sb, sw) = match classify_cast_back(types, base, want)? {
        CastShape::Identity => return Ok(v),
        CastShape::Bitcast => {
            let c = f.insert_before(user, Inst::new(Opcode::BitCast, want, vec![v]));
            return Ok(Value::Inst(c));
        }
        CastShape::Chain { sb, sw } => (sb, sw),
    };
    let not_prepared = || MergeError::InvalidCodegen("cast container type not pre-interned".into());
    let int_b = types.lookup(&Type::Int(sb as u32)).ok_or_else(not_prepared)?;
    let int_w = types.lookup(&Type::Int(sw as u32)).ok_or_else(not_prepared)?;
    let mut cur = v;
    if base != int_b {
        let c = f.insert_before(user, Inst::new(Opcode::BitCast, int_b, vec![cur]));
        cur = Value::Inst(c);
    }
    if sb != sw {
        let c = f.insert_before(user, Inst::new(Opcode::Trunc, int_w, vec![cur]));
        cur = Value::Inst(c);
    }
    if want != int_w {
        let c = f.insert_before(user, Inst::new(Opcode::BitCast, want, vec![cur]));
        cur = Value::Inst(c);
    }
    Ok(cur)
}

/// Restores SSA dominance by demoting registers to stack slots: any value
/// defined on one side of a merge diamond but consumed by shared code gets
/// an entry-block slot, a store after its definition, and loads before the
/// offending uses — the memory-demotion strategy of the original CGO'19
/// code generator.
fn fix_dominance(module: &mut Module, mf: FuncId) {
    let dom = cfg::Dominators::compute(module.func(mf));
    // Collect (user, operand position, def) triples violating dominance.
    let mut violations: Vec<(InstId, usize, InstId)> = Vec::new();
    {
        let f = module.func(mf);
        for u in f.inst_ids() {
            let ub = f.inst(u).parent;
            for (k, op) in f.inst(u).operands.iter().enumerate() {
                let Value::Inst(d) = *op else { continue };
                let db = f.inst(d).parent;
                if db != ub && !dom.dominates(db, ub) {
                    violations.push((u, k, d));
                }
            }
        }
    }
    if violations.is_empty() {
        return;
    }
    let entry = module.func(mf).entry();
    let void = module.types.void();
    let mut slots: HashMap<InstId, InstId> = HashMap::new();
    // Create slots and stores per unique demoted def.
    let defs: std::collections::BTreeSet<InstId> = violations.iter().map(|&(_, _, d)| d).collect();
    for d in defs {
        let ty = module.func(mf).inst(d).ty;
        let ptr_ty = module.types.ptr(ty);
        let slot = module.func_mut(mf).insert_inst(
            entry,
            0,
            Inst::with_extra(Opcode::Alloca, ptr_ty, vec![], ExtraData::Alloca { allocated: ty }),
        );
        // Store after the definition (or at the top of the normal
        // destination when the definition is an invoke).
        let f = module.func(mf);
        let d_inst = f.inst(d);
        if d_inst.opcode == Opcode::Invoke {
            let n = d_inst.operands.len();
            let normal = d_inst.operands[n - 2].as_block().expect("invoke normal dest");
            module.func_mut(mf).insert_inst(
                normal,
                0,
                Inst::new(Opcode::Store, void, vec![Value::Inst(d), Value::Inst(slot)]),
            );
        } else {
            let parent = d_inst.parent;
            let pos = f.block(parent).insts.iter().position(|&i| i == d).expect("def in its block");
            module.func_mut(mf).insert_inst(
                parent,
                pos + 1,
                Inst::new(Opcode::Store, void, vec![Value::Inst(d), Value::Inst(slot)]),
            );
        }
        slots.insert(d, slot);
    }
    // Replace each violating use with a load inserted before the user.
    // Violations arrive in block-position order (inst_ids is layout
    // order), so a load inserted before the *first* user of a def in a
    // block dominates every later user in that block — reuse it.
    let mut load_cache: HashMap<(InstId, BlockId), Value> = HashMap::new();
    for (u, k, d) in violations {
        let ub = module.func(mf).inst(u).parent;
        let loaded = match load_cache.get(&(d, ub)) {
            Some(&v) => v,
            None => {
                let slot = slots[&d];
                let ty = module.func(mf).inst(d).ty;
                let load = module
                    .func_mut(mf)
                    .insert_before(u, Inst::new(Opcode::Load, ty, vec![Value::Inst(slot)]));
                let v = Value::Inst(load);
                load_cache.insert((d, ub), v);
                v
            }
        };
        module.func_mut(mf).inst_mut(u).operands[k] = loaded;
    }
}
