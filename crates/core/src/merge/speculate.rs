//! Speculative merge codegen into a scratch module (pipeline prepare
//! stage) and the transplant that commits it.
//!
//! [`merge_pair_aligned`](super::merge_pair_aligned) mutates the module it
//! targets, so the parallel pipeline could not run code generation on
//! worker threads — until now the commit stage regenerated every merged
//! body sequentially. [`speculate_merge`] runs the *same* §III-E pipeline
//! (return merging, parameter merging, two-pass codegen, verification)
//! against a private [`ScratchModule`] that only borrows the main module,
//! and [`commit_speculative`] splices the finished body into the main
//! module via [`fmsa_ir::transplant_function`].
//!
//! Equivalence contract: given the same `(f1, f2, seq1, seq2, alignment,
//! config)` and an unchanged module state for `f1`/`f2`, the
//! `speculate_merge`-then-`commit_speculative` path produces a function
//! byte-identical (printer output, arena ids, type-store evolution) to a
//! direct `merge_pair_aligned` call at commit time. The pipeline enforces
//! the "unchanged" premise with its mutation-generation re-validation and
//! falls back to direct codegen on any conflict; the equivalence itself is
//! property-tested in `tests/transplant.rs`.

use super::{
    codegen, compute_ret_info, functions_identical, unique_name, MergeConfig, MergeError,
    MergeInfo, RetInfo,
};
use crate::callsites::{outgoing_calls, CallSiteIndex};
use crate::linearize::Entry;
use crate::merge::params::{merge_params, ParamMerge};
use crate::profitability::{delta_cost_side, ProfitReport};
use fmsa_align::Alignment;
use fmsa_ir::{FuncId, Module, ScratchModule};
use fmsa_target::CostModel;

/// A merged function built speculatively in a scratch module, waiting to
/// be transplanted (or discarded) by the commit stage.
#[derive(Debug)]
pub struct SpeculativeMerge {
    scratch: ScratchModule,
    /// The merged function's id *in the scratch module*.
    merged: FuncId,
    /// First original, in the main module.
    pub f1: FuncId,
    /// Second original, in the main module.
    pub f2: FuncId,
    has_func_id: bool,
    params: ParamMerge,
    ret: RetInfo,
    matches: usize,
    alignment_len: usize,
}

/// Runs the full merge code generation for `(f1, f2)` against a scratch
/// module, leaving `module` untouched. Safe to run on a worker thread that
/// only holds `&Module`.
///
/// # Errors
///
/// The same failures as [`super::merge_pair_aligned`]; an error here means
/// a direct codegen at commit time would fail identically, so the pipeline
/// replays it inline to preserve the sequential driver's behaviour.
pub fn speculate_merge(
    module: &Module,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
    alignment: Alignment,
    config: &MergeConfig,
) -> Result<SpeculativeMerge, MergeError> {
    let ret = compute_ret_info(
        &module.types,
        module.func(f1).ret_ty(&module.types),
        module.func(f2).ret_ty(&module.types),
    )?;
    let has_func_id = !functions_identical(module, f1, f2, seq1, seq2, &alignment);
    let i1 = module.types.i1();
    let pm = merge_params(
        module.func(f1),
        module.func(f2),
        has_func_id,
        i1,
        Some((&alignment, seq1, seq2)),
        config.reuse_params,
    );
    let matches = alignment.match_count();
    let alignment_len = alignment.len();
    let mut scratch = ScratchModule::new(module);
    let sf1 = scratch.import_function(module, f1);
    let sf2 = scratch.import_function(module, f2);
    // The scratch clones keep the donors' instruction/block arenas
    // verbatim, so the precomputed linearizations stay valid. The name is
    // provisional — the commit-time transplant names the function against
    // the then-current main module, exactly as direct codegen would.
    let name = unique_name(&scratch.module, config, sf1, sf2);
    let merged = codegen::generate(
        &mut scratch.module,
        codegen::CodegenInput {
            f1: sf1,
            f2: sf2,
            seq1: seq1.to_vec(),
            seq2: seq2.to_vec(),
            alignment,
            params: pm.clone(),
            ret,
            name,
            reorder_commutative: config.reorder_commutative,
        },
    )?;
    Ok(SpeculativeMerge {
        scratch,
        merged,
        f1,
        f2,
        has_func_id,
        params: pm,
        ret,
        matches,
        alignment_len,
    })
}

impl SpeculativeMerge {
    /// How the scratch module's type store was seeded from the main
    /// module: shared by reference (copy-on-write frozen prefix) vs
    /// copied eagerly. The pipeline aggregates these into its
    /// scratch-setup counters.
    pub fn scratch_setup(&self) -> fmsa_ir::ScratchSetup {
        self.scratch.setup()
    }

    /// Types this speculative build interned beyond the donor snapshot.
    pub fn suffix_types(&self) -> usize {
        self.scratch.suffix_types()
    }

    /// Consumes a speculative build whose merge will *not* be committed,
    /// replaying the one side effect an in-place build-and-discard leaves
    /// behind: the types codegen interned. (The sequential driver
    /// generates the merged function, evaluates it, and removes it — but
    /// interned types outlive the removal, and type-id values are
    /// observable through the MinHash candidate index.)
    pub fn discard_into(self, module: &mut Module) {
        self.scratch.migrate_types_into(module);
    }

    /// Whether the speculatively built body still verifies in its scratch
    /// module. The commit stage checks this before trusting a body built
    /// on another thread — a corrupted scratch build must degrade to
    /// inline codegen, never reach the main module.
    pub fn body_valid(&self) -> bool {
        fmsa_ir::verify_function(&self.scratch.module, self.merged).is_empty()
    }

    /// Test-only sabotage: corrupts the scratch body (drops the entry
    /// block's terminator) so [`SpeculativeMerge::body_valid`] fails.
    /// Exercised by the fault-injection harness; not part of the API.
    #[doc(hidden)]
    pub fn poison_scratch(&mut self) {
        let f = self.scratch.module.func_mut(self.merged);
        let entry = f.entry();
        if let Some(t) = f.terminator(entry) {
            f.remove_inst(t);
        }
    }
}

/// Evaluates the Δ profitability of a speculative merge *before*
/// transplanting it: body sizes are read from the scratch build
/// (instruction costs are structural, so they are identical either side
/// of a transplant) and the merged body's outgoing calls are mapped to
/// main-module ids through the scratch import map. Returns exactly what
/// [`crate::profitability::evaluate_indexed`] would return for the same
/// body after a transplant — letting the caller skip the transplant
/// entirely for unprofitable merges.
pub fn evaluate_speculative(
    module: &Module,
    cm: &CostModel,
    spec: &SpeculativeMerge,
    sites: &CallSiteIndex,
) -> ProfitReport {
    let size_f1 = cm.body_size(module, spec.f1);
    let size_f2 = cm.body_size(module, spec.f2);
    let size_merged = cm.body_size(&spec.scratch.module, spec.merged);
    let merged_out: std::collections::HashMap<FuncId, usize> =
        outgoing_calls(spec.scratch.module.func(spec.merged))
            .into_iter()
            .map(|(g, n)| {
                (spec.scratch.donor_of(g).expect("merged body only calls imported functions"), n)
            })
            .collect();
    let sites_of = |f: FuncId| sites.count(f) + merged_out.get(&f).copied().unwrap_or(0);
    // `ret` / `merged_tys` carry scratch TyIds, but both come from the
    // inputs' signatures, which existed when the scratch store was cloned
    // — prefix ids, valid in the main store with identical values.
    let merged_params = spec.params.merged_tys.len() as u64;
    let epsilon =
        delta_cost_side(module, cm, spec.f1, merged_params, spec.ret.ty1, spec.ret.base, &sites_of)
            + delta_cost_side(
                module,
                cm,
                spec.f2,
                merged_params,
                spec.ret.ty2,
                spec.ret.base,
                &sites_of,
            );
    let delta = (size_f1 + size_f2) as i64 - (size_merged + epsilon) as i64;
    ProfitReport { size_f1, size_f2, size_merged, epsilon, delta }
}

/// Transplants a speculatively built merge into `module`, returning the
/// same [`MergeInfo`] a direct [`super::merge_pair_aligned`] call would
/// have produced. The function name is computed against the current module
/// state (so name deduplication matches the sequential driver), and every
/// [`fmsa_ir::TyId`] recorded alongside the scratch build is remapped
/// through the transplant's type migration.
///
/// # Errors
///
/// [`MergeError::InvalidCodegen`] when the transplant cannot resolve a
/// cross-module reference; the module is left without the new function and
/// the caller falls back to direct codegen.
pub fn commit_speculative(
    module: &mut Module,
    spec: SpeculativeMerge,
    config: &MergeConfig,
) -> Result<MergeInfo, MergeError> {
    let name = unique_name(module, config, spec.f1, spec.f2);
    let t = spec
        .scratch
        .transplant_into(module, spec.merged, name)
        .map_err(|e| MergeError::InvalidCodegen(format!("transplant: {e}")))?;
    let params = ParamMerge {
        merged_tys: spec.params.merged_tys.iter().map(|&ty| t.types.get(ty)).collect(),
        has_func_id: spec.params.has_func_id,
        map1: spec.params.map1,
        map2: spec.params.map2,
    };
    let ret = RetInfo {
        base: t.types.get(spec.ret.base),
        ty1: t.types.get(spec.ret.ty1),
        ty2: t.types.get(spec.ret.ty2),
    };
    Ok(MergeInfo {
        merged: t.func,
        f1: spec.f1,
        f2: spec.f2,
        has_func_id: spec.has_func_id,
        params,
        ret,
        matches: spec.matches,
        alignment_len: spec.alignment_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::linearize::linearize;
    use crate::merge::{align_with, merge_pair_aligned};
    use fmsa_ir::printer::print_module;
    use fmsa_ir::{FuncBuilder, Value};

    fn pair_module() -> (Module, FuncId, FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let mut out = Vec::new();
        for (name, c) in [("sa", 7), ("sb", 9)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..10 {
                v = b.add(v, b.const_i32(k));
                v = b.mul(v, Value::Param(1));
            }
            v = b.xor(v, b.const_i32(c));
            b.ret(Some(v));
            out.push(f);
        }
        (m, out[0], out[1])
    }

    #[test]
    fn speculative_build_matches_direct_codegen() {
        let (base, f1, f2) = pair_module();
        let config = MergeConfig::default();
        let seq1 = linearize(base.func(f1));
        let seq2 = linearize(base.func(f2));
        let al = align_with(&base, f1, f2, &seq1, &seq2, &config.scoring, config.algorithm);

        let mut direct = base.clone();
        let info_d = merge_pair_aligned(
            &mut direct,
            f1,
            f2,
            seq1.clone(),
            seq2.clone(),
            al.clone(),
            &config,
        )
        .expect("direct codegen");

        let mut spec_m = base.clone();
        let spec =
            speculate_merge(&spec_m, f1, f2, &seq1, &seq2, al, &config).expect("speculative build");
        let info_s = commit_speculative(&mut spec_m, spec, &config).expect("transplant");

        assert_eq!(print_module(&direct), print_module(&spec_m));
        assert_eq!(info_d.merged, info_s.merged);
        assert_eq!(info_d.has_func_id, info_s.has_func_id);
        assert_eq!(info_d.params, info_s.params);
        assert_eq!(info_d.ret, info_s.ret);
        assert_eq!((info_d.matches, info_d.alignment_len), (info_s.matches, info_s.alignment_len));
        assert!(
            fmsa_ir::verify_module(&spec_m).is_empty(),
            "{:?}",
            fmsa_ir::verify_module(&spec_m)
        );
    }

    #[test]
    fn speculative_evaluation_matches_post_transplant_evaluation() {
        use crate::callsites::CallSiteIndex;
        use crate::profitability::evaluate_indexed;
        use fmsa_target::TargetArch;
        let (base, f1, f2) = pair_module();
        // A caller so the δ term sees non-trivial call-site counts.
        let mut base = base;
        let i32t = base.types.i32();
        let fn_ty = base.types.func(i32t, vec![i32t]);
        let caller = base.create_function("caller", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut base, caller);
            let e = b.block("entry");
            b.switch_to(e);
            let r = b.call(f1, vec![Value::Param(0), Value::Param(0)]);
            b.ret(Some(r));
        }
        let config = MergeConfig::default();
        let cm = CostModel::new(TargetArch::X86_64);
        let sites = CallSiteIndex::build(&base);
        let seq1 = linearize(base.func(f1));
        let seq2 = linearize(base.func(f2));
        let al = align_with(&base, f1, f2, &seq1, &seq2, &config.scoring, config.algorithm);
        let mut m = base.clone();
        let spec = speculate_merge(&m, f1, f2, &seq1, &seq2, al, &config).expect("builds");
        let before = evaluate_speculative(&m, &cm, &spec, &sites);
        let info = commit_speculative(&mut m, spec, &config).expect("transplants");
        let after = evaluate_indexed(&m, &cm, &info, &sites);
        assert_eq!(before, after, "pre-transplant Δ must equal post-transplant Δ");
    }

    #[test]
    fn discard_replays_type_interning_only() {
        let (base, f1, f2) = pair_module();
        let config = MergeConfig::default();
        let seq1 = linearize(base.func(f1));
        let seq2 = linearize(base.func(f2));
        let al = align_with(&base, f1, f2, &seq1, &seq2, &config.scoring, config.algorithm);
        // Direct codegen, then removal: the types stay interned.
        let mut direct = base.clone();
        let info = merge_pair_aligned(
            &mut direct,
            f1,
            f2,
            seq1.clone(),
            seq2.clone(),
            al.clone(),
            &config,
        )
        .expect("builds");
        direct.remove_function(info.merged);
        // Speculative build, then discard: same store, same text.
        let mut spec_m = base.clone();
        let spec = speculate_merge(&spec_m, f1, f2, &seq1, &seq2, al, &config).expect("builds");
        spec.discard_into(&mut spec_m);
        assert_eq!(spec_m.types.len(), direct.types.len(), "type interning must be replayed");
        assert_eq!(print_module(&direct), print_module(&spec_m));
    }

    #[test]
    fn speculation_leaves_the_main_module_untouched() {
        let (base, f1, f2) = pair_module();
        let config = MergeConfig::default();
        let seq1 = linearize(base.func(f1));
        let seq2 = linearize(base.func(f2));
        let al = align_with(&base, f1, f2, &seq1, &seq2, &config.scoring, config.algorithm);
        let before = print_module(&base);
        let types_before = base.types.len();
        let spec = speculate_merge(&base, f1, f2, &seq1, &seq2, al, &config).expect("builds");
        assert_eq!(print_module(&base), before);
        assert_eq!(base.types.len(), types_before, "no types interned into the donor");
        drop(spec);
    }
}
