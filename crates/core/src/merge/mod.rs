//! Merging two arbitrary functions by sequence alignment (paper §III).
//!
//! [`merge_pair`] is the whole §III pipeline for one pair: linearize both
//! functions, align the sequences, merge parameter lists and return types,
//! then generate the merged body in two passes. The merged function is
//! *added* to the module; committing it (thunks, call-graph update,
//! deleting the originals) is the pass driver's job so that unprofitable
//! merges can simply be discarded.

pub mod codegen;
pub mod params;
pub mod speculate;

pub use params::{merge_params, ParamMerge};
pub use speculate::{commit_speculative, evaluate_speculative, speculate_merge, SpeculativeMerge};

use crate::equivalence::EquivCtx;
use crate::linearize::{linearize, Entry};
use fmsa_align::{hirschberg, needleman_wunsch, Alignment, ScoringScheme, Step};
use fmsa_ir::{FuncId, Module, TyId, Type};
use std::error::Error;
use std::fmt;

/// Which global-alignment algorithm drives the merge. The paper uses
/// Needleman-Wunsch but notes "other algorithms could also be used with
/// different performance and memory usage trade-offs" (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AlignAlgo {
    /// Full-matrix Needleman-Wunsch: `O(nm)` time *and* space.
    #[default]
    NeedlemanWunsch,
    /// Hirschberg's divide-and-conquer: `O(nm)` time, `O(n+m)` space —
    /// relevant for the multi-thousand-instruction functions of Table I.
    Hirschberg,
}

/// Tunables for one merge.
#[derive(Debug, Clone)]
pub struct MergeConfig {
    /// Alignment scoring scheme (§III-C: "rewards matches and equally
    /// penalizes mismatches and gaps").
    pub scoring: ScoringScheme,
    /// Alignment algorithm.
    pub algorithm: AlignAlgo,
    /// Reuse parameters between the two functions (§III-E; the ablation
    /// knob behind the paper's "up to 7%" claim).
    pub reuse_params: bool,
    /// Reorder operands of commutative instructions to reduce selects.
    pub reorder_commutative: bool,
    /// Base name for the merged function symbol.
    pub name_hint: Option<String>,
}

impl Default for MergeConfig {
    fn default() -> Self {
        MergeConfig {
            scoring: ScoringScheme::default(),
            algorithm: AlignAlgo::default(),
            reuse_params: true,
            reorder_commutative: true,
            name_hint: None,
        }
    }
}

/// Why a pair could not be merged.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeError {
    /// One of the functions is a declaration.
    Declaration,
    /// Attempted to merge a function with itself.
    SameFunction,
    /// Return types cannot be merged (differing aggregate returns).
    IncompatibleReturns,
    /// Code generation produced IR that failed verification (returned
    /// rather than panicking so the pass can skip the pair; this indicates
    /// a bug and is asserted against in tests).
    InvalidCodegen(String),
}

impl fmt::Display for MergeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MergeError::Declaration => write!(f, "cannot merge declarations"),
            MergeError::SameFunction => write!(f, "cannot merge a function with itself"),
            MergeError::IncompatibleReturns => {
                write!(f, "return types cannot be merged")
            }
            MergeError::InvalidCodegen(msg) => write!(f, "merged function invalid: {msg}"),
        }
    }
}

impl Error for MergeError {}

/// How the merged return type relates to the originals (§III-E: "we select
/// the largest one as the base type ... If one of them is void, then ... we
/// just return the non-void type").
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetInfo {
    /// Return type of the merged function.
    pub base: TyId,
    /// Original return type of the first function.
    pub ty1: TyId,
    /// Original return type of the second function.
    pub ty2: TyId,
}

impl RetInfo {
    /// Whether side `first`'s return values need conversion to the base.
    pub fn needs_cast(&self, first: bool) -> bool {
        let ty = if first { self.ty1 } else { self.ty2 };
        ty != self.base
    }
}

/// Everything the pass needs to commit (or discard) a completed merge.
#[derive(Debug, Clone)]
pub struct MergeInfo {
    /// The merged function (already added to the module).
    pub merged: FuncId,
    /// First original.
    pub f1: FuncId,
    /// Second original.
    pub f2: FuncId,
    /// Whether the merged function takes the leading `i1` identifier
    /// (false when the two functions were effectively identical).
    pub has_func_id: bool,
    /// Parameter mapping.
    pub params: ParamMerge,
    /// Return-type merging.
    pub ret: RetInfo,
    /// Number of match columns in the alignment (diagnostics).
    pub matches: usize,
    /// Total alignment length (diagnostics).
    pub alignment_len: usize,
}

/// Computes the merged return type.
///
/// # Errors
///
/// [`MergeError::IncompatibleReturns`] when both types are distinct
/// aggregates (the paper's aggregate-return path is out of scope; see
/// DESIGN.md).
pub fn compute_ret_info(
    types: &fmsa_ir::TypeStore,
    r1: TyId,
    r2: TyId,
) -> Result<RetInfo, MergeError> {
    if r1 == r2 {
        return Ok(RetInfo { base: r1, ty1: r1, ty2: r2 });
    }
    let void1 = matches!(types.get(r1), Type::Void);
    let void2 = matches!(types.get(r2), Type::Void);
    if void1 {
        return Ok(RetInfo { base: r2, ty1: r1, ty2: r2 });
    }
    if void2 {
        return Ok(RetInfo { base: r1, ty1: r1, ty2: r2 });
    }
    if types.is_aggregate(r1) || types.is_aggregate(r2) {
        return Err(MergeError::IncompatibleReturns);
    }
    let s1 = types.bit_size(r1).unwrap_or(0);
    let s2 = types.bit_size(r2).unwrap_or(0);
    let base = if s1 >= s2 { r1 } else { r2 };
    Ok(RetInfo { base, ty1: r1, ty2: r2 })
}

/// Runs the full §III pipeline on `(f1, f2)`, adding the merged function to
/// `module` and returning the mapping information. On error the module is
/// left unchanged.
///
/// # Errors
///
/// See [`MergeError`].
pub fn merge_pair(
    module: &mut Module,
    f1: FuncId,
    f2: FuncId,
    config: &MergeConfig,
) -> Result<MergeInfo, MergeError> {
    if f1 == f2 {
        return Err(MergeError::SameFunction);
    }
    if module.func(f1).is_declaration() || module.func(f2).is_declaration() {
        return Err(MergeError::Declaration);
    }
    // Step 1: linearization (§III-B).
    let seq1 = linearize(module.func(f1));
    let seq2 = linearize(module.func(f2));
    // Step 2: sequence alignment (§III-C).
    let alignment = align_with(module, f1, f2, &seq1, &seq2, &config.scoring, config.algorithm);
    merge_pair_aligned(module, f1, f2, seq1, seq2, alignment, config)
}

/// Computes the alignment of two already-linearized functions with
/// Needleman-Wunsch. Exposed for the pass driver, which times this step
/// separately (paper Fig. 13).
pub fn align(
    module: &Module,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
    scoring: &ScoringScheme,
) -> Alignment {
    align_with(module, f1, f2, seq1, seq2, scoring, AlignAlgo::NeedlemanWunsch)
}

/// [`align`] with an explicit algorithm choice.
pub fn align_with(
    module: &Module,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
    scoring: &ScoringScheme,
    algorithm: AlignAlgo,
) -> Alignment {
    let ctx = EquivCtx::new(module, module.func(f1), module.func(f2));
    match algorithm {
        AlignAlgo::NeedlemanWunsch => {
            needleman_wunsch(seq1, seq2, |a, b| ctx.entries_equivalent(a, b), scoring)
        }
        AlignAlgo::Hirschberg => {
            hirschberg(seq1, seq2, |a, b| ctx.entries_equivalent(a, b), scoring)
        }
    }
}

/// The code-generation half of [`merge_pair`], taking a precomputed
/// alignment (used by the pass driver for fine-grained timing, and by the
/// SOA baseline which builds its lock-step alignment directly).
///
/// # Errors
///
/// See [`MergeError`].
pub fn merge_pair_aligned(
    module: &mut Module,
    f1: FuncId,
    f2: FuncId,
    seq1: Vec<Entry>,
    seq2: Vec<Entry>,
    alignment: Alignment,
    config: &MergeConfig,
) -> Result<MergeInfo, MergeError> {
    let ret = compute_ret_info(
        &module.types,
        module.func(f1).ret_ty(&module.types),
        module.func(f2).ret_ty(&module.types),
    )?;
    // "In the special case where we merge identical functions, the output
    // is also identical ... we can remove the extra parameter" (§III-E).
    let has_func_id = !functions_identical(module, f1, f2, &seq1, &seq2, &alignment);
    let i1 = module.types.i1();
    let pm = params::merge_params(
        module.func(f1),
        module.func(f2),
        has_func_id,
        i1,
        Some((&alignment, &seq1, &seq2)),
        config.reuse_params,
    );
    let matches = alignment.match_count();
    let alignment_len = alignment.len();
    let name = unique_name(module, config, f1, f2);
    let merged = codegen::generate(
        module,
        codegen::CodegenInput {
            f1,
            f2,
            seq1,
            seq2,
            alignment,
            params: pm.clone(),
            ret,
            name,
            reorder_commutative: config.reorder_commutative,
        },
    )?;
    Ok(MergeInfo { merged, f1, f2, has_func_id, params: pm, ret, matches, alignment_len })
}

fn unique_name(module: &Module, config: &MergeConfig, f1: FuncId, f2: FuncId) -> String {
    let base = match &config.name_hint {
        Some(h) => h.clone(),
        None => format!("__merged.{}.{}", module.func(f1).name, module.func(f2).name),
    };
    if module.func_by_name(&base).is_none() {
        return base;
    }
    let mut k = 1;
    loop {
        let cand = format!("{base}.{k}");
        if module.func_by_name(&cand).is_none() {
            return cand;
        }
        k += 1;
    }
}

/// Whether the alignment shows the two functions to be operand-level
/// identical, so no `func_id`, selects, or guard branches will be needed.
fn functions_identical(
    module: &Module,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
    alignment: &Alignment,
) -> bool {
    if module.func(f1).fn_ty() != module.func(f2).fn_ty() {
        return false;
    }
    if !alignment.steps.iter().all(Step::is_match) {
        return false;
    }
    // Build positional correspondences and check operands are congruent.
    let fa = module.func(f1);
    let fb = module.func(f2);
    let mut inst_pairs: std::collections::HashMap<fmsa_ir::InstId, fmsa_ir::InstId> =
        std::collections::HashMap::new();
    let mut block_pairs: std::collections::HashMap<fmsa_ir::BlockId, fmsa_ir::BlockId> =
        std::collections::HashMap::new();
    for step in &alignment.steps {
        let Step::Both { i, j, .. } = *step else { return false };
        match (seq1[i], seq2[j]) {
            (Entry::Inst(a), Entry::Inst(b)) => {
                inst_pairs.insert(a, b);
            }
            (Entry::Label(a), Entry::Label(b)) => {
                block_pairs.insert(a, b);
            }
            _ => return false,
        }
    }
    for (&a, &b) in &inst_pairs {
        let ia = fa.inst(a);
        let ib = fb.inst(b);
        if ia.ty != ib.ty || ia.operands.len() != ib.operands.len() {
            return false;
        }
        for (&oa, &ob) in ia.operands.iter().zip(&ib.operands) {
            let congruent = match (oa, ob) {
                (fmsa_ir::Value::Inst(x), fmsa_ir::Value::Inst(y)) => {
                    inst_pairs.get(&x) == Some(&y)
                }
                (fmsa_ir::Value::Block(x), fmsa_ir::Value::Block(y)) => {
                    block_pairs.get(&x) == Some(&y)
                }
                (fmsa_ir::Value::Param(x), fmsa_ir::Value::Param(y)) => x == y,
                (x, y) => x == y,
            };
            if !congruent {
                return false;
            }
        }
    }
    true
}
