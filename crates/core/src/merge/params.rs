//! Merging parameter lists (paper §III-E, Fig. 6).
//!
//! "First, we create the binary parameter that represents the function
//! identifier ... We then add all the parameters of one of the functions to
//! the new list of parameters. Finally, for each parameter of the second
//! function, we either reuse an existing and available parameter of
//! identical type from the first function or we add a new parameter."
//!
//! When several reuse pairings are possible, the paper "select\[s\] parameter
//! pairs that minimize the number of select instructions ... by analyzing
//! all pairs of equivalent instructions that use the parameters as
//! operands" — implemented here as a vote matrix over aligned instruction
//! pairs.

use fmsa_align::{Alignment, Step};
use fmsa_ir::{Function, TyId, Value};
use std::collections::HashMap;

use crate::linearize::Entry;

/// Result of merging two parameter lists.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParamMerge {
    /// Types of the merged parameter list, in order. When
    /// [`ParamMerge::has_func_id`] is true, index 0 is the `i1` function
    /// identifier.
    pub merged_tys: Vec<TyId>,
    /// Whether the merged list begins with the function identifier.
    pub has_func_id: bool,
    /// `map1[k]` = merged index carrying the first function's parameter `k`.
    pub map1: Vec<usize>,
    /// `map2[k]` = merged index carrying the second function's parameter `k`.
    pub map2: Vec<usize>,
}

impl ParamMerge {
    /// Number of merged parameters (including the identifier).
    pub fn len(&self) -> usize {
        self.merged_tys.len()
    }

    /// Whether the merged list is empty.
    pub fn is_empty(&self) -> bool {
        self.merged_tys.is_empty()
    }

    /// How many of the second function's parameters were fused onto first
    /// function parameters.
    pub fn reused(&self) -> usize {
        self.map2.iter().filter(|&&m| self.map1.contains(&m)).count()
    }
}

/// Computes the merged parameter list.
///
/// * `with_func_id` — include the leading `i1` identifier (omitted when
///   merging identical functions, §III-E).
/// * `alignment` — when provided together with the two linearized
///   sequences, matched instruction pairs vote for `(param_i, param_j)`
///   pairings that would remove `select`s; the vote matrix drives reuse.
/// * `reuse` — when `false`, no parameters are shared (the ablation knob
///   for the paper's "up to 7%" claim).
pub fn merge_params(
    f1: &Function,
    f2: &Function,
    with_func_id: bool,
    i1_ty: TyId,
    alignment: Option<(&Alignment, &[Entry], &[Entry])>,
    reuse: bool,
) -> ParamMerge {
    let n1 = f1.params().len();
    let n2 = f2.params().len();
    let mut merged_tys: Vec<TyId> = Vec::with_capacity(1 + n1 + n2);
    if with_func_id {
        merged_tys.push(i1_ty);
    }
    let base = merged_tys.len();
    // All of f1's parameters, in order.
    let mut map1 = Vec::with_capacity(n1);
    for p in f1.params() {
        map1.push(merged_tys.len());
        merged_tys.push(p.ty);
    }
    // Votes: (p1, p2) pairs appearing at the same operand position of
    // matched instruction pairs.
    let mut votes: HashMap<(u32, u32), usize> = HashMap::new();
    if let Some((al, seq1, seq2)) = alignment {
        for step in &al.steps {
            let Step::Both { i, j, matched: true } = *step else { continue };
            let (Entry::Inst(i1), Entry::Inst(i2)) = (seq1[i], seq2[j]) else { continue };
            let in1 = f1.inst(i1);
            let in2 = f2.inst(i2);
            for (&o1, &o2) in in1.operands.iter().zip(&in2.operands) {
                if let (Value::Param(p1), Value::Param(p2)) = (o1, o2) {
                    *votes.entry((p1, p2)).or_insert(0) += 1;
                }
            }
        }
    }
    // Assign f2 parameters: highest-vote identical-type pairings first.
    let mut map2 = vec![usize::MAX; n2];
    let mut taken = vec![false; n1]; // f1 params already fused
    if reuse {
        let mut ranked: Vec<((u32, u32), usize)> = votes.into_iter().collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| a.0.cmp(&b.0)));
        for ((p1, p2), _) in ranked {
            let (p1u, p2u) = (p1 as usize, p2 as usize);
            if p1u >= n1 || p2u >= n2 || taken[p1u] || map2[p2u] != usize::MAX {
                continue;
            }
            if f1.params()[p1u].ty != f2.params()[p2u].ty {
                continue;
            }
            taken[p1u] = true;
            map2[p2u] = base + p1u;
        }
        // Remaining f2 params: first free identical-typed f1 param.
        for (k, slot) in map2.iter_mut().enumerate() {
            if *slot != usize::MAX {
                continue;
            }
            let want = f2.params()[k].ty;
            if let Some(p1u) = (0..n1).find(|&p| !taken[p] && f1.params()[p].ty == want) {
                taken[p1u] = true;
                *slot = base + p1u;
            }
        }
    }
    // Anything still unassigned becomes a fresh parameter.
    for (k, slot) in map2.iter_mut().enumerate() {
        if *slot == usize::MAX {
            *slot = merged_tys.len();
            merged_tys.push(f2.params()[k].ty);
        }
    }
    ParamMerge { merged_tys, has_func_id: with_func_id, map1, map2 }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{Module, TypeStore};

    fn mk_fn(m: &mut Module, name: &str, params: Vec<TyId>) -> fmsa_ir::FuncId {
        let void = m.types.void();
        let fn_ty = m.types.func(void, params);
        m.create_function(name, fn_ty)
    }

    #[test]
    fn fig6_example_shape() {
        // Fig. 6: f1(i32, i32*, float) + f2(double, float, float)
        // -> (i1, i32, i32*, float, double, float): the two float params
        // fuse one pair, double and the second float are fresh.
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let p32 = m.types.ptr(i32t);
        let f32t = m.types.f32();
        let f64t = m.types.f64();
        let f1 = mk_fn(&mut m, "f1", vec![i32t, p32, f32t]);
        let f2 = mk_fn(&mut m, "f2", vec![f64t, f32t, f32t]);
        let pm = merge_params(m.func(f1), m.func(f2), true, m.types.i1(), None, true);
        assert!(pm.has_func_id);
        assert_eq!(pm.merged_tys.len(), 6);
        assert_eq!(pm.merged_tys[0], m.types.i1());
        // f1 params occupy slots 1..=3 in order.
        assert_eq!(pm.map1, vec![1, 2, 3]);
        // One of f2's float params reuses slot 3 (f1's float).
        let reuse_count = pm.map2.iter().filter(|&&x| x == 3).count();
        assert_eq!(reuse_count, 1);
        assert_eq!(pm.reused(), 1);
    }

    #[test]
    fn no_reuse_mode_concatenates() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f1 = mk_fn(&mut m, "f1", vec![i32t, i32t]);
        let f2 = mk_fn(&mut m, "f2", vec![i32t]);
        let pm = merge_params(m.func(f1), m.func(f2), true, m.types.i1(), None, false);
        assert_eq!(pm.merged_tys.len(), 1 + 2 + 1);
        assert_eq!(pm.reused(), 0);
    }

    #[test]
    fn without_func_id() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f1 = mk_fn(&mut m, "f1", vec![i32t]);
        let f2 = mk_fn(&mut m, "f2", vec![i32t]);
        let pm = merge_params(m.func(f1), m.func(f2), false, m.types.i1(), None, true);
        assert!(!pm.has_func_id);
        assert_eq!(pm.merged_tys.len(), 1);
        assert_eq!(pm.map1, vec![0]);
        assert_eq!(pm.map2, vec![0]);
    }

    #[test]
    fn maps_are_total_and_well_typed() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let f1 = mk_fn(&mut m, "f1", vec![i32t, f64t, i32t]);
        let f2 = mk_fn(&mut m, "f2", vec![f64t, f64t, i32t, i32t]);
        let pm = merge_params(m.func(f1), m.func(f2), true, m.types.i1(), None, true);
        for (k, &slot) in pm.map1.iter().enumerate() {
            assert_eq!(pm.merged_tys[slot], m.func(f1).params()[k].ty);
        }
        for (k, &slot) in pm.map2.iter().enumerate() {
            assert_eq!(pm.merged_tys[slot], m.func(f2).params()[k].ty);
        }
        // No two f2 params share a slot; no two f1 params share a slot.
        let mut s1 = pm.map1.clone();
        s1.sort_unstable();
        s1.dedup();
        assert_eq!(s1.len(), pm.map1.len());
        let mut s2 = pm.map2.clone();
        s2.sort_unstable();
        s2.dedup();
        assert_eq!(s2.len(), pm.map2.len());
    }

    #[test]
    fn vote_matrix_prefers_matching_pairs() {
        // f1(a: i32, b: i32), f2(x: i32, y: i32). An aligned `add a, c` vs
        // `add y, c` votes (0, 1): f2's y should land on f1's a slot.
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![i32t, i32t]);
        let f1 = m.create_function("f1", fn_ty);
        let f2 = m.create_function("f2", fn_ty);
        for (f, pick) in [(f1, 0u32), (f2, 1u32)] {
            let mut b = fmsa_ir::FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.add(Value::Param(pick), b.const_i32(3));
            let s = b.alloca(i32t);
            b.store(v, s);
            b.ret(None);
        }
        let seq1 = crate::linearize::linearize(m.func(f1));
        let seq2 = crate::linearize::linearize(m.func(f2));
        let ctx = crate::equivalence::EquivCtx::new(&m, m.func(f1), m.func(f2));
        let al = fmsa_align::needleman_wunsch(
            &seq1,
            &seq2,
            |a, b| ctx.entries_equivalent(a, b),
            &fmsa_align::ScoringScheme::default(),
        );
        let pm = merge_params(
            m.func(f1),
            m.func(f2),
            true,
            m.types.i1(),
            Some((&al, &seq1, &seq2)),
            true,
        );
        // f2's param 1 (y) should map onto f1's param 0 slot (merged idx 1).
        assert_eq!(pm.map2[1], 1, "vote should fuse f2.y with f1.a: {pm:?}");
    }

    // Silence unused-import warning in non-test builds of this module.
    #[allow(unused)]
    fn _touch(_: &TypeStore) {}
}
