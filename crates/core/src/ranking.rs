//! Candidate ranking (paper §IV).
//!
//! "For each function f1, we use a priority queue to rank the topmost
//! similar candidates based on their similarity, defined by s(f1, f2), for
//! all other functions f2. We use an exploration threshold to limit how
//! many top candidates we will evaluate for any given function."
//!
//! The ranking hot path is zero-clone and allocation-bounded: candidates
//! are scored through *borrowed* fingerprints and kept in a min-heap of at
//! most `threshold` entries, so ranking n candidates costs O(n log t) with
//! O(t) transient memory instead of the O(n log n)/O(n) of heapifying the
//! whole pool.

use crate::fingerprint::Fingerprint;
use fmsa_ir::FuncId;
use std::cmp::{Ordering, Reverse};
use std::collections::BinaryHeap;

/// A ranked merge candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Candidate {
    /// The candidate function.
    pub func: FuncId,
    /// Fingerprint similarity `s(f1, f2)` in `[0, 0.5]`.
    pub similarity: f64,
}

impl Eq for Candidate {}

impl Ord for Candidate {
    fn cmp(&self, other: &Self) -> Ordering {
        // Total order: by similarity, ties broken by function id so the
        // exploration is deterministic.
        self.similarity
            .partial_cmp(&other.similarity)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.func.cmp(&self.func))
    }
}

impl PartialOrd for Candidate {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Ranks every entry of `pool` (other than `subject` itself) against
/// `subject`'s fingerprint and returns the top `threshold` candidates,
/// most similar first.
///
/// `pool` yields *borrowed* fingerprints — callers rank straight over
/// their live fingerprint map without cloning an entry.
///
/// `min_similarity` prunes hopeless candidates early (a similarity of 0
/// means no opcode or no type overlap at all).
pub fn rank_candidates<'a, I>(
    subject: FuncId,
    subject_fp: &Fingerprint,
    pool: I,
    threshold: usize,
    min_similarity: f64,
) -> Vec<Candidate>
where
    I: IntoIterator<Item = (FuncId, &'a Fingerprint)>,
{
    if threshold == 0 {
        return Vec::new();
    }
    // Min-heap of the best `threshold` seen so far; the root is the current
    // worst keeper, evicted whenever a better candidate arrives.
    let mut keep: BinaryHeap<Reverse<Candidate>> =
        BinaryHeap::with_capacity(threshold.min(64).saturating_add(1));
    for (func, fp) in pool {
        if func == subject {
            continue;
        }
        let s = subject_fp.similarity(fp);
        if s < min_similarity {
            continue;
        }
        let cand = Candidate { func, similarity: s };
        if keep.len() < threshold {
            keep.push(Reverse(cand));
        } else if let Some(worst) = keep.peek() {
            if cand > worst.0 {
                keep.pop();
                keep.push(Reverse(cand));
            }
        }
    }
    let mut out: Vec<Candidate> = keep.into_iter().map(|Reverse(c)| c).collect();
    out.sort_by(|a, b| b.cmp(a));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Module, Value};

    fn fn_with_adds(m: &mut Module, name: &str, adds: usize) -> FuncId {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let mut v = Value::Param(0);
        for _ in 0..adds {
            v = b.add(v, b.const_i32(1));
        }
        b.ret(Some(v));
        f
    }

    fn ranked(
        subject: FuncId,
        sfp: &Fingerprint,
        pool: &[(FuncId, Fingerprint)],
        threshold: usize,
        min_similarity: f64,
    ) -> Vec<Candidate> {
        rank_candidates(
            subject,
            sfp,
            pool.iter().map(|(f, fp)| (*f, fp)),
            threshold,
            min_similarity,
        )
    }

    #[test]
    fn most_similar_first_and_threshold_respected() {
        let mut m = Module::new("m");
        let subject = fn_with_adds(&mut m, "subject", 10);
        let twin = fn_with_adds(&mut m, "twin", 10);
        let close = fn_with_adds(&mut m, "close", 8);
        let far = fn_with_adds(&mut m, "far", 1);
        let pool: Vec<(FuncId, Fingerprint)> =
            [subject, twin, close, far].into_iter().map(|f| (f, Fingerprint::of(&m, f))).collect();
        let sfp = Fingerprint::of(&m, subject);
        let top = ranked(subject, &sfp, &pool, 2, 0.0);
        assert_eq!(top.len(), 2);
        assert_eq!(top[0].func, twin);
        assert_eq!(top[1].func, close);
        assert!(top[0].similarity >= top[1].similarity);
        let all = ranked(subject, &sfp, &pool, 10, 0.0);
        assert_eq!(all.len(), 3, "subject itself excluded");
    }

    #[test]
    fn min_similarity_prunes() {
        let mut m = Module::new("m");
        let subject = fn_with_adds(&mut m, "subject", 10);
        let far = fn_with_adds(&mut m, "far", 1);
        let pool: Vec<(FuncId, Fingerprint)> =
            [subject, far].into_iter().map(|f| (f, Fingerprint::of(&m, f))).collect();
        let sfp = Fingerprint::of(&m, subject);
        let top = ranked(subject, &sfp, &pool, 10, 0.49);
        assert!(top.is_empty(), "far twin pruned by min similarity: {top:?}");
    }

    #[test]
    fn deterministic_tie_breaking() {
        let mut m = Module::new("m");
        let subject = fn_with_adds(&mut m, "subject", 5);
        let t1 = fn_with_adds(&mut m, "t1", 5);
        let t2 = fn_with_adds(&mut m, "t2", 5);
        let pool: Vec<(FuncId, Fingerprint)> =
            [subject, t1, t2].into_iter().map(|f| (f, Fingerprint::of(&m, f))).collect();
        let sfp = Fingerprint::of(&m, subject);
        let a = ranked(subject, &sfp, &pool, 2, 0.0);
        let b = ranked(subject, &sfp, &pool, 2, 0.0);
        assert_eq!(a, b);
        assert_eq!(a[0].func, t1, "lower id wins ties");
    }

    #[test]
    fn bounded_heap_matches_full_sort() {
        // The top-t of the bounded heap must equal the first t entries of a
        // full descending sort, for every t.
        let mut m = Module::new("m");
        let subject = fn_with_adds(&mut m, "subject", 12);
        let pool: Vec<(FuncId, Fingerprint)> = (0..20)
            .map(|k| {
                let f = fn_with_adds(&mut m, &format!("c{k}"), 1 + k % 13);
                (f, Fingerprint::of(&m, f))
            })
            .collect();
        let sfp = Fingerprint::of(&m, subject);
        let full = ranked(subject, &sfp, &pool, usize::MAX, 0.0);
        for t in [1usize, 3, 7, 20, 50] {
            let top = ranked(subject, &sfp, &pool, t, 0.0);
            assert_eq!(top, full[..t.min(full.len())], "t={t}");
        }
        assert!(ranked(subject, &sfp, &pool, 0, 0.0).is_empty());
    }
}
