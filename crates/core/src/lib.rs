//! # fmsa-core — Function Merging by Sequence Alignment
//!
//! The reproduction of the core contribution of Rocha et al., *Function
//! Merging by Sequence Alignment* (CGO 2019): merging arbitrary pairs of
//! functions — different bodies, CFGs, signatures and return types — by
//! aligning their linearized instruction sequences, plus the exploration
//! framework (fingerprints, ranking, profitability) that makes the
//! optimization practical, and the two baselines the paper evaluates
//! against.
//!
//! Module map (paper section in parentheses):
//!
//! * [`mod@linearize`] — CFG → sequence (§III-B)
//! * [`equivalence`] — instruction/label equivalence (§III-D)
//! * [`merge`] — parameter/return merging and two-pass code generation
//!   (§III-E)
//! * [`fingerprint`] — opcode/type fingerprints and the similarity upper
//!   bound (§IV)
//! * [`ranking`] — priority-queue candidate ranking with exploration
//!   threshold (§IV)
//! * [`search`] — pluggable candidate search: exact pairwise scan or
//!   near-linear MinHash/LSH shortlisting
//! * [`profitability`] — the Δ cost model over the target TTI (§IV-A)
//! * [`thunks`] — call-graph update: thunks, call-site rewriting, deletion
//! * [`pass`] — the optimization driver with per-step timers (§IV, Fig. 7)
//! * [`baselines`] — LLVM-style identical merging and the SOA structural
//!   merging of von Koch et al. (§V-A)
//! * [`config`] / [`error`] — the unified public API: one builder-style
//!   [`Config`], one [`enum@Error`], one [`optimize`] entry point
//! * [`store`] / [`session`] — the content-addressed function store with
//!   its durable LSH index, and the request lifecycle the merge daemon
//!   (`fmsa-serve`) sits on
//! * [`telemetry`] — the flight recorder: span tracing with Chrome-trace
//!   export, the metrics registry behind `/metrics`, and the per-attempt
//!   merge decision log
//!
//! # Examples
//!
//! ```
//! use fmsa_ir::{Module, FuncBuilder, Value};
//! use fmsa_core::{optimize, Config};
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.i32();
//! let fn_ty = m.types.func(i32t, vec![i32t]);
//! for (i, name) in ["add_tag_a", "add_tag_b"].into_iter().enumerate() {
//!     let f = m.create_function(name, fn_ty);
//!     let mut b = FuncBuilder::new(&mut m, f);
//!     let entry = b.block("entry");
//!     b.switch_to(entry);
//!     // The bodies differ in one constant: past the identical-merging
//!     // prepass, squarely in FMSA territory.
//!     let mut v = Value::Param(0);
//!     for k in 0..10 {
//!         let c = if k == 0 { 41 + i as i32 } else { k };
//!         v = b.add(v, b.const_i32(c));
//!     }
//!     b.ret(Some(v));
//! }
//! let stats = optimize(&mut m, &Config::new()).unwrap();
//! assert_eq!(stats.merges, 1);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod callsites;
pub mod config;
pub mod equivalence;
pub mod error;
pub mod faults;
pub mod fingerprint;
pub mod linearize;
pub mod merge;
pub mod pass;
pub mod pipeline;
pub mod profitability;
pub mod quarantine;
pub mod ranking;
pub mod search;
pub mod session;
pub mod store;
pub mod telemetry;
pub mod thunks;

pub use callsites::CallSiteIndex;
pub use config::{optimize, Config};
pub use equivalence::EquivCtx;
pub use error::Error;
pub use faults::{silence_injected_panics, FaultPlan, FaultSite};
pub use linearize::{linearize, Entry, LinearizationCache};
pub use merge::{merge_pair, MergeConfig, MergeError, MergeInfo};
#[allow(deprecated)]
pub use pipeline::{run_fmsa_pipeline, PipelineOptions};
pub use quarantine::{QuarantineEntry, QuarantineLog, QuarantineStage};
pub use search::{CandidateSearch, ExactSearch, LshConfig, LshSearch, SearchStrategy};
pub use session::{MergeOutcome, MergeSession, RequestStats, SessionTotals};
pub use store::{
    module_hashes, scan_store, CompactStats, ContentHash, FsyncPolicy, FunctionStore, IngestStats,
    RecoveryStats, SimilarEntry, StoreEntry, StoreOptions, StoreScan,
};
pub use telemetry::{DecisionLog, DecisionOutcome, DecisionRecord, Registry};
