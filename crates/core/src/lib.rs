//! # fmsa-core — Function Merging by Sequence Alignment
//!
//! The reproduction of the core contribution of Rocha et al., *Function
//! Merging by Sequence Alignment* (CGO 2019): merging arbitrary pairs of
//! functions — different bodies, CFGs, signatures and return types — by
//! aligning their linearized instruction sequences, plus the exploration
//! framework (fingerprints, ranking, profitability) that makes the
//! optimization practical, and the two baselines the paper evaluates
//! against.
//!
//! Module map (paper section in parentheses):
//!
//! * [`mod@linearize`] — CFG → sequence (§III-B)
//! * [`equivalence`] — instruction/label equivalence (§III-D)
//! * [`merge`] — parameter/return merging and two-pass code generation
//!   (§III-E)
//! * [`fingerprint`] — opcode/type fingerprints and the similarity upper
//!   bound (§IV)
//! * [`ranking`] — priority-queue candidate ranking with exploration
//!   threshold (§IV)
//! * [`search`] — pluggable candidate search: exact pairwise scan or
//!   near-linear MinHash/LSH shortlisting
//! * [`profitability`] — the Δ cost model over the target TTI (§IV-A)
//! * [`thunks`] — call-graph update: thunks, call-site rewriting, deletion
//! * [`pass`] — the optimization driver with per-step timers (§IV, Fig. 7)
//! * [`baselines`] — LLVM-style identical merging and the SOA structural
//!   merging of von Koch et al. (§V-A)
//!
//! # Examples
//!
//! ```
//! use fmsa_ir::{Module, FuncBuilder, Value};
//! use fmsa_core::pass::{run_fmsa, FmsaOptions};
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.i32();
//! let fn_ty = m.types.func(i32t, vec![i32t]);
//! for name in ["inc_a", "inc_b"] {
//!     let f = m.create_function(name, fn_ty);
//!     let mut b = FuncBuilder::new(&mut m, f);
//!     let entry = b.block("entry");
//!     b.switch_to(entry);
//!     let one = b.const_i32(1);
//!     let r = b.add(Value::Param(0), one);
//!     b.ret(Some(r));
//! }
//! let stats = run_fmsa(&mut m, &FmsaOptions::default());
//! assert_eq!(stats.merges, 1);
//! ```

#![warn(missing_docs)]

pub mod baselines;
pub mod callsites;
pub mod equivalence;
pub mod faults;
pub mod fingerprint;
pub mod linearize;
pub mod merge;
pub mod pass;
pub mod pipeline;
pub mod profitability;
pub mod quarantine;
pub mod ranking;
pub mod search;
pub mod thunks;

pub use callsites::CallSiteIndex;
pub use equivalence::EquivCtx;
pub use faults::{silence_injected_panics, FaultPlan, FaultSite};
pub use linearize::{linearize, Entry, LinearizationCache};
pub use merge::{merge_pair, MergeConfig, MergeError, MergeInfo};
pub use pipeline::{run_fmsa_pipeline, PipelineOptions};
pub use quarantine::{QuarantineEntry, QuarantineLog, QuarantineStage};
pub use search::{CandidateSearch, ExactSearch, LshConfig, LshSearch, SearchStrategy};
