//! Function fingerprints and the similarity estimate (paper §IV).
//!
//! "The fingerprint consists of: (1) a map of instruction opcodes to their
//! frequency in the function; (2) the set of types manipulated by the
//! function." Similarity is the minimum of two optimistic upper bounds:
//!
//! ```text
//! UB(f1,f2,K) = Σ_k min(freq(k,f1), freq(k,f2))
//!             / Σ_k freq(k,f1) + freq(k,f2)
//!
//! s(f1,f2)    = min(UB(Opcodes), UB(Types))   ∈ [0, 0.5]
//! ```
//!
//! Identical functions score exactly 0.5.

use fmsa_ir::{FuncId, Module, Opcode, TyId};
use std::collections::HashMap;

/// A lightweight summary of one function used to rank merge candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Fingerprint {
    opcode_freq: [u32; Opcode::COUNT],
    type_freq: HashMap<TyId, u32>,
    /// Precomputed `Σ type_freq` so [`Fingerprint::type_upper_bound`] does
    /// not re-sum both maps on every comparison (the ranking hot path
    /// evaluates it O(n·t) times per pass).
    type_total: u64,
    size: u32,
}

impl Fingerprint {
    /// Computes the fingerprint of `func`.
    pub fn of(module: &Module, func: FuncId) -> Fingerprint {
        let f = module.func(func);
        let mut opcode_freq = [0u32; Opcode::COUNT];
        let mut type_freq: HashMap<TyId, u32> = HashMap::new();
        for iid in f.inst_ids() {
            let inst = f.inst(iid);
            opcode_freq[inst.opcode.index()] += 1;
            *type_freq.entry(inst.ty).or_insert(0) += 1;
            for &op in &inst.operands {
                match op {
                    fmsa_ir::Value::Block(_) | fmsa_ir::Value::Func(_) => {}
                    _ => {
                        let ty = f.value_ty(op, &module.types);
                        *type_freq.entry(ty).or_insert(0) += 1;
                    }
                }
            }
        }
        let type_total = type_freq.values().map(|&v| v as u64).sum();
        Fingerprint { opcode_freq, type_freq, type_total, size: f.inst_count() as u32 }
    }

    /// Number of instructions summarized.
    pub fn size(&self) -> u32 {
        self.size
    }

    /// Frequency of one opcode.
    pub fn opcode_count(&self, op: Opcode) -> u32 {
        self.opcode_freq[op.index()]
    }

    /// The opcode-frequency vector, indexed by [`Opcode::index`].
    pub fn opcode_freqs(&self) -> &[u32; Opcode::COUNT] {
        &self.opcode_freq
    }

    /// The type-frequency multiset (iteration order is unspecified).
    pub fn type_freqs(&self) -> impl Iterator<Item = (TyId, u32)> + '_ {
        self.type_freq.iter().map(|(&ty, &n)| (ty, n))
    }

    /// Total number of type occurrences (`Σ type_freq`), precomputed.
    pub fn type_total(&self) -> u64 {
        self.type_total
    }

    /// The opcode-frequency upper bound `UB(f1, f2, Opcodes)`.
    pub fn opcode_upper_bound(&self, other: &Fingerprint) -> f64 {
        let mut inter = 0u64;
        let mut total = 0u64;
        for k in 0..Opcode::COUNT {
            let (a, b) = (self.opcode_freq[k] as u64, other.opcode_freq[k] as u64);
            inter += a.min(b);
            total += a + b;
        }
        ratio(inter, total)
    }

    /// The type-frequency upper bound `UB(f1, f2, Types)`.
    pub fn type_upper_bound(&self, other: &Fingerprint) -> f64 {
        let mut inter = 0u64;
        let total = self.type_total + other.type_total;
        // Iterate the smaller map; intersection only needs shared keys.
        let (small, big) = if self.type_freq.len() <= other.type_freq.len() {
            (&self.type_freq, &other.type_freq)
        } else {
            (&other.type_freq, &self.type_freq)
        };
        for (ty, &a) in small {
            if let Some(&b) = big.get(ty) {
                inter += (a as u64).min(b as u64);
            }
        }
        ratio(inter, total)
    }

    /// The paper's similarity estimate
    /// `s(f1,f2) = min(UB(Opcodes), UB(Types))`, in `[0, 0.5]`.
    pub fn similarity(&self, other: &Fingerprint) -> f64 {
        self.opcode_upper_bound(other).min(self.type_upper_bound(other))
    }
}

/// Shared by both upper bounds so they agree on the degenerate case: two
/// empty multisets are trivially identical and score the maximum 0.5.
/// (Previously `type_upper_bound` forced `total = 1` and returned 0.0 for
/// the same inputs `opcode_upper_bound` scored 0.5, so the similarity of
/// two empty functions depended on which bound the `min` picked.)
fn ratio(inter: u64, total: u64) -> f64 {
    if total == 0 {
        return 0.5;
    }
    inter as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};

    fn simple_fn(m: &mut Module, name: &str, float: bool) -> FuncId {
        let ty = if float { m.types.f64() } else { m.types.i32() };
        let fn_ty = m.types.func(ty, vec![ty, ty]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let entry = b.block("entry");
        b.switch_to(entry);
        let v = if float {
            b.fadd(Value::Param(0), Value::Param(1))
        } else {
            b.add(Value::Param(0), Value::Param(1))
        };
        let w = if float { b.fmul(v, Value::Param(0)) } else { b.mul(v, Value::Param(0)) };
        b.ret(Some(w));
        f
    }

    #[test]
    fn identical_functions_score_half() {
        let mut m = Module::new("m");
        let a = simple_fn(&mut m, "a", false);
        let b = simple_fn(&mut m, "b", false);
        let fa = Fingerprint::of(&m, a);
        let fb = Fingerprint::of(&m, b);
        assert!((fa.similarity(&fb) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let mut m = Module::new("m");
        let a = simple_fn(&mut m, "a", false);
        let b = simple_fn(&mut m, "b", true);
        let fa = Fingerprint::of(&m, a);
        let fb = Fingerprint::of(&m, b);
        let s_ab = fa.similarity(&fb);
        let s_ba = fb.similarity(&fa);
        assert!((s_ab - s_ba).abs() < 1e-12);
        assert!((0.0..=0.5).contains(&s_ab));
    }

    #[test]
    fn type_bound_separates_int_from_float_twins() {
        // Same opcode shape would be misleading; the type bound must pull
        // the similarity down (this is why the estimate takes the min).
        let mut m = Module::new("m");
        let a = simple_fn(&mut m, "a", false);
        let b = simple_fn(&mut m, "b", true);
        let fa = Fingerprint::of(&m, a);
        let fb = Fingerprint::of(&m, b);
        // add/mul vs fadd/fmul also differ in opcodes; check both bounds.
        assert!(fa.opcode_upper_bound(&fb) < 0.5);
        assert!(fa.type_upper_bound(&fb) < 0.5);
        assert!(fa.similarity(&fb) < 0.25);
    }

    #[test]
    fn disjoint_functions_score_low() {
        let mut m = Module::new("m");
        let a = simple_fn(&mut m, "a", false);
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let g = m.create_function("g", fn_ty);
        let mut b = FuncBuilder::new(&mut m, g);
        let entry = b.block("entry");
        b.switch_to(entry);
        b.ret(None);
        let fa = Fingerprint::of(&m, a);
        let fg = Fingerprint::of(&m, g);
        // Only `ret` is shared, and type sets barely overlap.
        assert!(fa.similarity(&fg) < 0.2);
    }

    #[test]
    fn empty_functions_agree_on_both_bounds() {
        // Regression: two declarations (empty bodies) must score 0.5 from
        // *both* upper bounds — the type bound used to return 0.0 while the
        // opcode bound returned 0.5.
        let mut m = Module::new("m");
        let void = m.types.void();
        let fn_ty = m.types.func(void, vec![]);
        let a = m.create_function("a", fn_ty);
        let b = m.create_function("b", fn_ty);
        let fa = Fingerprint::of(&m, a);
        let fb = Fingerprint::of(&m, b);
        assert_eq!(fa.opcode_upper_bound(&fb), 0.5);
        assert_eq!(fa.type_upper_bound(&fb), 0.5);
        assert_eq!(fa.similarity(&fb), 0.5);
    }

    #[test]
    fn type_total_matches_freshly_summed_map() {
        let mut m = Module::new("m");
        let a = simple_fn(&mut m, "a", false);
        let fa = Fingerprint::of(&m, a);
        let summed: u64 = fa.type_freqs().map(|(_, n)| n as u64).sum();
        assert_eq!(fa.type_total(), summed);
        assert!(fa.type_total() > 0);
    }

    #[test]
    fn fingerprint_counts_opcodes() {
        let mut m = Module::new("m");
        let a = simple_fn(&mut m, "a", false);
        let fa = Fingerprint::of(&m, a);
        assert_eq!(fa.opcode_count(fmsa_ir::Opcode::Add), 1);
        assert_eq!(fa.opcode_count(fmsa_ir::Opcode::Mul), 1);
        assert_eq!(fa.opcode_count(fmsa_ir::Opcode::Ret), 1);
        assert_eq!(fa.opcode_count(fmsa_ir::Opcode::FAdd), 0);
        assert_eq!(fa.size(), 3);
    }
}
