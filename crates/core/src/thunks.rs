//! Call-graph update: thunks, call-site rewriting, and deletion of the
//! original functions (paper §III-A and §IV).
//!
//! "After producing the merged function, the bodies of the original
//! functions are replaced by a single call to this new function, creating
//! what is sometimes called a thunk. In some cases, it may also be valid
//! and profitable to completely delete the original functions, remapping
//! all their original calls to the merged function. Two of the key facts
//! that prohibit the complete removal of the original functions are the
//! existence of indirect calls or the possibility of external linkage."

use crate::merge::{codegen::cast_back, MergeError, MergeInfo};
use fmsa_ir::{FuncId, Inst, InstId, Linkage, Module, Opcode, TyId, Type, Value};

/// How one original function was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The function was deleted; all call sites now call the merged
    /// function directly.
    Deleted,
    /// The function body was replaced by a thunk calling the merged
    /// function (external linkage or address-taken).
    Thunk,
}

/// Describes how calls to one original function translate to calls to the
/// merged function.
#[derive(Debug, Clone)]
pub struct CallRewrite {
    /// The merged function to call instead.
    pub target: FuncId,
    /// Types of the merged parameter list.
    pub merged_param_tys: Vec<TyId>,
    /// `map[k]` = merged slot receiving original argument `k`.
    pub map: Vec<usize>,
    /// `(slot, value)` of the function identifier, if present.
    pub func_id: Option<(usize, bool)>,
    /// Merged return type.
    pub ret_base: TyId,
    /// The original function's return type.
    pub ret_orig: TyId,
}

impl CallRewrite {
    /// Builds the rewrite description for one side of a merge.
    pub fn for_side(_module: &Module, info: &MergeInfo, first_side: bool) -> CallRewrite {
        let map = if first_side { info.params.map1.clone() } else { info.params.map2.clone() };
        CallRewrite {
            target: info.merged,
            merged_param_tys: info.params.merged_tys.clone(),
            map,
            func_id: info.has_func_id.then_some((0, first_side)),
            ret_base: info.ret.base,
            ret_orig: if first_side { info.ret.ty1 } else { info.ret.ty2 },
        }
    }

    fn build_args(&self, module: &Module, orig_args: &[Value]) -> Vec<Value> {
        let i1 = module.types.i1();
        let mut out: Vec<Value> =
            self.merged_param_tys.iter().map(|&ty| Value::Undef(ty)).collect();
        if let Some((slot, v)) = self.func_id {
            out[slot] = Value::ConstInt { ty: i1, bits: v as u64 };
        }
        for (k, &a) in orig_args.iter().enumerate() {
            out[self.map[k]] = a;
        }
        out
    }
}

/// Whether `func` may be deleted outright after merging.
pub fn can_delete(module: &Module, func: FuncId) -> bool {
    let f = module.func(func);
    f.linkage == Linkage::Internal && !f.address_taken
}

/// Counts direct call/invoke sites of `func` across the module (used by
/// the profitability `δ` term).
pub fn count_call_sites(module: &Module, func: FuncId) -> usize {
    let mut n = 0;
    for g in module.func_ids() {
        let gf = module.func(g);
        for iid in gf.inst_ids() {
            let inst = gf.inst(iid);
            if matches!(inst.opcode, Opcode::Call | Opcode::Invoke)
                && inst.operands.first() == Some(&Value::Func(func))
            {
                n += 1;
            }
        }
    }
    n
}

/// Rewrites every direct call/invoke of `from` in the module into a call of
/// the merged function per `rw`. Returns the functions whose bodies were
/// modified (their fingerprints need refreshing).
///
/// # Errors
///
/// Propagates cast construction failures (programming errors guarded by
/// tests).
pub fn rewrite_call_sites(
    module: &mut Module,
    from: FuncId,
    rw: &CallRewrite,
) -> Result<Vec<FuncId>, MergeError> {
    let mut touched = Vec::new();
    for g in module.func_ids() {
        if g == from {
            continue; // the original body is about to be replaced anyway
        }
        let call_sites: Vec<InstId> = {
            let gf = module.func(g);
            gf.inst_ids()
                .into_iter()
                .filter(|&i| {
                    let inst = gf.inst(i);
                    matches!(inst.opcode, Opcode::Call | Opcode::Invoke)
                        && inst.operands.first() == Some(&Value::Func(from))
                })
                .collect()
        };
        if call_sites.is_empty() {
            continue;
        }
        for c in call_sites {
            rewrite_one_call(module, g, c, rw)?;
        }
        touched.push(g);
    }
    Ok(touched)
}

fn rewrite_one_call(
    module: &mut Module,
    g: FuncId,
    c: InstId,
    rw: &CallRewrite,
) -> Result<(), MergeError> {
    let (is_invoke, orig_args, labels) = {
        let inst = module.func(g).inst(c);
        let is_invoke = inst.opcode == Opcode::Invoke;
        let arg_end = if is_invoke { inst.operands.len() - 2 } else { inst.operands.len() };
        (is_invoke, inst.operands[1..arg_end].to_vec(), inst.operands[arg_end..].to_vec())
    };
    let mut ops = vec![Value::Func(rw.target)];
    ops.extend(rw.build_args(module, &orig_args));
    ops.extend(labels);
    {
        let inst = module.func_mut(g).inst_mut(c);
        inst.operands = ops;
        inst.ty = rw.ret_base;
    }
    // Convert the result back to the original type for existing users.
    let orig_is_void = matches!(module.types.get(rw.ret_orig), Type::Void);
    if !orig_is_void && rw.ret_orig != rw.ret_base {
        // Snapshot the users of the call result *before* building the cast
        // chain, so the chain's own reference to the call is not rewritten.
        let users: Vec<InstId> = {
            let gf = module.func(g);
            gf.inst_ids()
                .into_iter()
                .filter(|&u| u != c && gf.inst(u).operands.contains(&Value::Inst(c)))
                .collect()
        };
        let insert_point = if is_invoke {
            // Result conversion must happen on the normal path.
            let inst = module.func(g).inst(c);
            let n = inst.operands.len();
            let normal = inst.operands[n - 2].as_block().expect("invoke normal dest");
            let first = module.func(g).block(normal).insts.first().copied();
            match first {
                Some(i) => i,
                None => c, // degenerate; keep before terminator
            }
        } else {
            // Insert right after the call: use the next instruction in the
            // block as the anchor (a call is never a terminator, so one
            // exists).
            let parent = module.func(g).inst(c).parent;
            let pos = module
                .func(g)
                .block(parent)
                .insts
                .iter()
                .position(|&i| i == c)
                .expect("call in its block");
            module.func(g).block(parent).insts[pos + 1]
        };
        let casted = cast_back(module, g, insert_point, Value::Inst(c), rw.ret_base, rw.ret_orig)?;
        // Point the pre-existing users at the converted value.
        let gf = module.func_mut(g);
        for u in users {
            let inst = gf.inst_mut(u);
            for op in &mut inst.operands {
                if *op == Value::Inst(c) {
                    *op = casted;
                }
            }
        }
    }
    Ok(())
}

/// Replaces the body of `orig` with a thunk calling the merged function.
///
/// # Errors
///
/// Propagates cast construction failures.
pub fn make_thunk(module: &mut Module, orig: FuncId, rw: &CallRewrite) -> Result<(), MergeError> {
    let n_params = module.func(orig).params().len();
    let ret_orig = rw.ret_orig;
    module.func_mut(orig).clear_body();
    let entry = module.func_mut(orig).add_block("entry");
    let param_vals: Vec<Value> = (0..n_params).map(|k| Value::Param(k as u32)).collect();
    let mut ops = vec![Value::Func(rw.target)];
    ops.extend(rw.build_args(module, &param_vals));
    let call = module.func_mut(orig).append_inst(entry, Inst::new(Opcode::Call, rw.ret_base, ops));
    let void = module.types.void();
    let orig_is_void = matches!(module.types.get(ret_orig), Type::Void);
    let ret = if orig_is_void {
        module.func_mut(orig).append_inst(entry, Inst::new(Opcode::Ret, void, vec![]));
        return Ok(());
    } else {
        module
            .func_mut(orig)
            .append_inst(entry, Inst::new(Opcode::Ret, void, vec![Value::Inst(call)]))
    };
    if ret_orig != rw.ret_base {
        let casted = cast_back(module, orig, ret, Value::Inst(call), rw.ret_base, ret_orig)?;
        module.func_mut(orig).inst_mut(ret).operands = vec![casted];
    }
    Ok(())
}

/// Result of committing one merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitResult {
    /// What happened to the first original.
    pub first: Disposition,
    /// What happened to the second original.
    pub second: Disposition,
    /// Functions whose bodies changed (rewritten call sites) — their
    /// fingerprints are stale.
    pub touched: Vec<FuncId>,
}

/// Commits a completed merge: rewrites call sites, then deletes each
/// original when legal (internal linkage, address not taken) or turns it
/// into a thunk otherwise.
///
/// `info` may come from direct code generation
/// ([`crate::merge::merge_pair_aligned`]) or from a transplanted
/// speculative build ([`crate::merge::commit_speculative`]); both leave
/// the merged function in `module` with main-module ids throughout, so
/// the call-graph update is identical either way.
///
/// # Errors
///
/// Propagates cast construction failures; the module may be partially
/// rewritten in that case (tests assert this never happens).
pub fn commit_merge(module: &mut Module, info: &MergeInfo) -> Result<CommitResult, MergeError> {
    let mut touched = Vec::new();
    let mut dispositions = [Disposition::Thunk; 2];
    for (idx, (func, first)) in [(info.f1, true), (info.f2, false)].into_iter().enumerate() {
        let rw = CallRewrite::for_side(module, info, first);
        if can_delete(module, func) {
            touched.extend(rewrite_call_sites(module, func, &rw)?);
            module.remove_function(func);
            dispositions[idx] = Disposition::Deleted;
        } else {
            // Keep the symbol; external callers keep its signature.
            make_thunk(module, func, &rw)?;
            dispositions[idx] = Disposition::Thunk;
        }
    }
    touched.sort();
    touched.dedup();
    Ok(CommitResult { first: dispositions[0], second: dispositions[1], touched })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_pair, MergeConfig};
    use fmsa_ir::{FuncBuilder, Module};

    fn pair_with_caller() -> (Module, FuncId, FuncId, FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let mut fns = Vec::new();
        for (name, c) in [("ta", 3), ("tb", 5)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..8 {
                v = b.mul(v, b.const_i32(k + 2));
                v = b.xor(v, b.const_i32(c));
            }
            b.ret(Some(v));
        }
        fns.push(m.func_by_name("ta").expect("ta"));
        fns.push(m.func_by_name("tb").expect("tb"));
        let caller = m.create_function("caller", fn_ty);
        {
            let (ta, tb) = (fns[0], fns[1]);
            let mut b = FuncBuilder::new(&mut m, caller);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.call(ta, vec![Value::Param(0)]);
            let y = b.call(tb, vec![x]);
            b.ret(Some(y));
        }
        (m, fns[0], fns[1], caller)
    }

    #[test]
    fn call_site_counting() {
        let (m, ta, tb, caller) = pair_with_caller();
        assert_eq!(count_call_sites(&m, ta), 1);
        assert_eq!(count_call_sites(&m, tb), 1);
        assert_eq!(count_call_sites(&m, caller), 0);
    }

    #[test]
    fn deletability_rules() {
        let (mut m, ta, _, _) = pair_with_caller();
        assert!(can_delete(&m, ta), "internal and not address-taken");
        m.func_mut(ta).linkage = Linkage::External;
        assert!(!can_delete(&m, ta), "external linkage pins the symbol");
        m.func_mut(ta).linkage = Linkage::Internal;
        m.func_mut(ta).address_taken = true;
        assert!(!can_delete(&m, ta), "address-taken pins the symbol");
    }

    #[test]
    fn commit_deletes_internal_and_thunks_external() {
        let (mut m, ta, tb, _) = pair_with_caller();
        m.func_mut(tb).linkage = Linkage::External;
        let info = merge_pair(&mut m, ta, tb, &MergeConfig::default()).expect("merges");
        let result = commit_merge(&mut m, &info).expect("commit");
        assert_eq!(result.first, Disposition::Deleted);
        assert_eq!(result.second, Disposition::Thunk);
        assert!(!m.is_live(ta));
        assert!(m.is_live(tb));
        // The caller was touched (its call to ta was rewritten).
        assert!(!result.touched.is_empty());
        assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    }

    #[test]
    fn thunk_body_shape() {
        let (mut m, ta, tb, _) = pair_with_caller();
        m.func_mut(ta).linkage = Linkage::External;
        m.func_mut(tb).linkage = Linkage::External;
        let info = merge_pair(&mut m, ta, tb, &MergeConfig::default()).expect("merges");
        commit_merge(&mut m, &info).expect("commit");
        for f in [ta, tb] {
            let func = m.func(f);
            assert_eq!(func.block_count(), 1, "thunk is a single block");
            assert_eq!(func.inst_count(), 2, "thunk = call + ret");
            let first = func.block(func.entry()).insts[0];
            assert_eq!(func.inst(first).opcode, Opcode::Call);
            assert_eq!(func.inst(first).operands[0], Value::Func(info.merged));
        }
    }
}
