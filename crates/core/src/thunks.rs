//! Call-graph update: thunks, call-site rewriting, and deletion of the
//! original functions (paper §III-A and §IV).
//!
//! "After producing the merged function, the bodies of the original
//! functions are replaced by a single call to this new function, creating
//! what is sometimes called a thunk. In some cases, it may also be valid
//! and profitable to completely delete the original functions, remapping
//! all their original calls to the merged function. Two of the key facts
//! that prohibit the complete removal of the original functions are the
//! existence of indirect calls or the possibility of external linkage."

use crate::callsites::{outgoing_calls, CallSiteIndex};
use crate::merge::{
    codegen::{cast_back_in, prepare_cast_tys},
    MergeError, MergeInfo,
};
use fmsa_ir::{
    FuncId, Function, Inst, InstId, Linkage, Module, Opcode, TyId, Type, TypeStore, Value,
};
use rayon::ThreadPool;
use std::collections::{BTreeSet, HashMap, HashSet};

/// How one original function was retired.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Disposition {
    /// The function was deleted; all call sites now call the merged
    /// function directly.
    Deleted,
    /// The function body was replaced by a thunk calling the merged
    /// function (external linkage or address-taken).
    Thunk,
}

/// Describes how calls to one original function translate to calls to the
/// merged function.
#[derive(Debug, Clone)]
pub struct CallRewrite {
    /// The merged function to call instead.
    pub target: FuncId,
    /// Types of the merged parameter list.
    pub merged_param_tys: Vec<TyId>,
    /// `map[k]` = merged slot receiving original argument `k`.
    pub map: Vec<usize>,
    /// `(slot, value)` of the function identifier, if present.
    pub func_id: Option<(usize, bool)>,
    /// Merged return type.
    pub ret_base: TyId,
    /// The original function's return type.
    pub ret_orig: TyId,
}

impl CallRewrite {
    /// Builds the rewrite description for one side of a merge.
    pub fn for_side(_module: &Module, info: &MergeInfo, first_side: bool) -> CallRewrite {
        let map = if first_side { info.params.map1.clone() } else { info.params.map2.clone() };
        CallRewrite {
            target: info.merged,
            merged_param_tys: info.params.merged_tys.clone(),
            map,
            func_id: info.has_func_id.then_some((0, first_side)),
            ret_base: info.ret.base,
            ret_orig: if first_side { info.ret.ty1 } else { info.ret.ty2 },
        }
    }

    fn build_args(&self, types: &TypeStore, orig_args: &[Value]) -> Vec<Value> {
        let i1 = types.i1();
        let mut out: Vec<Value> =
            self.merged_param_tys.iter().map(|&ty| Value::Undef(ty)).collect();
        if let Some((slot, v)) = self.func_id {
            out[slot] = Value::ConstInt { ty: i1, bits: v as u64 };
        }
        for (k, &a) in orig_args.iter().enumerate() {
            out[self.map[k]] = a;
        }
        out
    }
}

/// Whether `func` may be deleted outright after merging.
pub fn can_delete(module: &Module, func: FuncId) -> bool {
    let f = module.func(func);
    f.linkage == Linkage::Internal && !f.address_taken
}

/// Counts direct call/invoke sites of `func` across the module (used by
/// the profitability `δ` term).
pub fn count_call_sites(module: &Module, func: FuncId) -> usize {
    let mut n = 0;
    for g in module.func_ids() {
        let gf = module.func(g);
        for iid in gf.inst_ids() {
            let inst = gf.inst(iid);
            if matches!(inst.opcode, Opcode::Call | Opcode::Invoke)
                && inst.operands.first() == Some(&Value::Func(func))
            {
                n += 1;
            }
        }
    }
    n
}

/// Direct call/invoke sites of `from` inside one function body, in
/// layout order — the per-caller scan shared by the serial rewrite loop
/// and the partitioned rewrite tasks.
fn call_sites_of(f: &Function, from: FuncId) -> Vec<InstId> {
    f.inst_ids()
        .into_iter()
        .filter(|&i| {
            let inst = f.inst(i);
            matches!(inst.opcode, Opcode::Call | Opcode::Invoke)
                && inst.operands.first() == Some(&Value::Func(from))
        })
        .collect()
}

/// Rewrites every direct call/invoke of `from` in the module into a call of
/// the merged function per `rw`. Returns the functions whose bodies were
/// modified (their fingerprints need refreshing).
///
/// # Errors
///
/// Propagates cast construction failures (programming errors guarded by
/// tests).
pub fn rewrite_call_sites(
    module: &mut Module,
    from: FuncId,
    rw: &CallRewrite,
) -> Result<Vec<FuncId>, MergeError> {
    let mut touched = Vec::new();
    for g in module.func_ids() {
        if g == from {
            continue; // the original body is about to be replaced anyway
        }
        let call_sites = call_sites_of(module.func(g), from);
        if call_sites.is_empty() {
            continue;
        }
        for c in call_sites {
            rewrite_one_call(module, g, c, rw)?;
        }
        touched.push(g);
    }
    Ok(touched)
}

/// Interns the cast container types a side's rewrites/thunk will need —
/// exactly when a result conversion will actually be built (non-void
/// original return that differs from the merged base), so the store
/// evolves identically to the historical rewrite-time interning.
fn prepare_side_casts(types: &mut TypeStore, rw: &CallRewrite) -> Result<(), MergeError> {
    let orig_is_void = matches!(types.get(rw.ret_orig), Type::Void);
    if !orig_is_void && rw.ret_orig != rw.ret_base {
        prepare_cast_tys(types, rw.ret_base, rw.ret_orig)?;
    }
    Ok(())
}

/// [`rewrite_one_call`] against a (possibly detached) function: mutates
/// only `f` and reads only pre-interned types, so disjoint callers can be
/// rewritten from different worker threads (see [`RewritePlan`]).
fn rewrite_one_call_in(
    f: &mut Function,
    types: &TypeStore,
    c: InstId,
    rw: &CallRewrite,
) -> Result<(), MergeError> {
    let (is_invoke, orig_args, labels) = {
        let inst = f.inst(c);
        let is_invoke = inst.opcode == Opcode::Invoke;
        let arg_end = if is_invoke { inst.operands.len() - 2 } else { inst.operands.len() };
        (is_invoke, inst.operands[1..arg_end].to_vec(), inst.operands[arg_end..].to_vec())
    };
    let mut ops = vec![Value::Func(rw.target)];
    ops.extend(rw.build_args(types, &orig_args));
    ops.extend(labels);
    {
        let inst = f.inst_mut(c);
        inst.operands = ops;
        inst.ty = rw.ret_base;
    }
    // Convert the result back to the original type for existing users.
    let orig_is_void = matches!(types.get(rw.ret_orig), Type::Void);
    if !orig_is_void && rw.ret_orig != rw.ret_base {
        // Snapshot the users of the call result *before* building the cast
        // chain, so the chain's own reference to the call is not rewritten.
        let users: Vec<InstId> = f
            .inst_ids()
            .into_iter()
            .filter(|&u| u != c && f.inst(u).operands.contains(&Value::Inst(c)))
            .collect();
        let insert_point = if is_invoke {
            // Result conversion must happen on the normal path.
            let inst = f.inst(c);
            let n = inst.operands.len();
            let normal = inst.operands[n - 2].as_block().expect("invoke normal dest");
            match f.block(normal).insts.first().copied() {
                Some(i) => i,
                None => c, // degenerate; keep before terminator
            }
        } else {
            // Insert right after the call: use the next instruction in the
            // block as the anchor (a call is never a terminator, so one
            // exists).
            let parent = f.inst(c).parent;
            let pos =
                f.block(parent).insts.iter().position(|&i| i == c).expect("call in its block");
            f.block(parent).insts[pos + 1]
        };
        let casted =
            cast_back_in(f, types, insert_point, Value::Inst(c), rw.ret_base, rw.ret_orig)?;
        // Point the pre-existing users at the converted value.
        for u in users {
            let inst = f.inst_mut(u);
            for op in &mut inst.operands {
                if *op == Value::Inst(c) {
                    *op = casted;
                }
            }
        }
    }
    Ok(())
}

fn rewrite_one_call(
    module: &mut Module,
    g: FuncId,
    c: InstId,
    rw: &CallRewrite,
) -> Result<(), MergeError> {
    prepare_side_casts(&mut module.types, rw)?;
    let (f, types) = module.func_mut_with_types(g);
    rewrite_one_call_in(f, types, c, rw)
}

/// [`make_thunk`] against a (possibly detached) function; see
/// [`rewrite_one_call_in`] for why this only reads the type store.
fn make_thunk_in(f: &mut Function, types: &TypeStore, rw: &CallRewrite) -> Result<(), MergeError> {
    let n_params = f.params().len();
    let ret_orig = rw.ret_orig;
    f.clear_body();
    let entry = f.add_block("entry");
    let param_vals: Vec<Value> = (0..n_params).map(|k| Value::Param(k as u32)).collect();
    let mut ops = vec![Value::Func(rw.target)];
    ops.extend(rw.build_args(types, &param_vals));
    let call = f.append_inst(entry, Inst::new(Opcode::Call, rw.ret_base, ops));
    let void = types.void();
    let orig_is_void = matches!(types.get(ret_orig), Type::Void);
    let ret = if orig_is_void {
        f.append_inst(entry, Inst::new(Opcode::Ret, void, vec![]));
        return Ok(());
    } else {
        f.append_inst(entry, Inst::new(Opcode::Ret, void, vec![Value::Inst(call)]))
    };
    if ret_orig != rw.ret_base {
        let casted = cast_back_in(f, types, ret, Value::Inst(call), rw.ret_base, ret_orig)?;
        f.inst_mut(ret).operands = vec![casted];
    }
    Ok(())
}

/// Replaces the body of `orig` with a thunk calling the merged function.
///
/// # Errors
///
/// Propagates cast construction failures.
pub fn make_thunk(module: &mut Module, orig: FuncId, rw: &CallRewrite) -> Result<(), MergeError> {
    prepare_side_casts(&mut module.types, rw)?;
    let (f, types) = module.func_mut_with_types(orig);
    make_thunk_in(f, types, rw)
}

/// Result of committing one merge.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommitResult {
    /// What happened to the first original.
    pub first: Disposition,
    /// What happened to the second original.
    pub second: Disposition,
    /// Functions whose bodies changed (rewritten call sites) — their
    /// fingerprints are stale.
    pub touched: Vec<FuncId>,
}

/// Commits a completed merge: rewrites call sites, then deletes each
/// original when legal (internal linkage, address not taken) or turns it
/// into a thunk otherwise.
///
/// `info` may come from direct code generation
/// ([`crate::merge::merge_pair_aligned`]) or from a transplanted
/// speculative build ([`crate::merge::commit_speculative`]); both leave
/// the merged function in `module` with main-module ids throughout, so
/// the call-graph update is identical either way.
///
/// # Errors
///
/// Propagates cast construction failures; the module may be partially
/// rewritten in that case (tests assert this never happens).
pub fn commit_merge(module: &mut Module, info: &MergeInfo) -> Result<CommitResult, MergeError> {
    let mut touched = Vec::new();
    let mut dispositions = [Disposition::Thunk; 2];
    for (idx, (func, first)) in [(info.f1, true), (info.f2, false)].into_iter().enumerate() {
        let rw = CallRewrite::for_side(module, info, first);
        if can_delete(module, func) {
            touched.extend(rewrite_call_sites(module, func, &rw)?);
            module.remove_function(func);
            dispositions[idx] = Disposition::Deleted;
        } else {
            // Keep the symbol; external callers keep its signature.
            make_thunk(module, func, &rw)?;
            dispositions[idx] = Disposition::Thunk;
        }
    }
    touched.sort();
    touched.dedup();
    Ok(CommitResult { first: dispositions[0], second: dispositions[1], touched })
}

/// One caller-exclusive action inside a [`RewritePlan`] partition.
#[derive(Debug, Clone)]
enum RewriteTask {
    /// Rewrite every direct call/invoke of `from` in this caller into a
    /// call of the merged function per `rw`.
    Calls { from: FuncId, rw: CallRewrite },
    /// Replace this function's body with a thunk calling the merged
    /// function.
    Thunk { rw: CallRewrite },
}

/// How one original function will be retired when its plan executes.
#[derive(Debug)]
struct PlannedSide {
    func: FuncId,
    rw: CallRewrite,
    disposition: Disposition,
    /// Callers from the call-site index (committed module state), in
    /// module order, minus sides retired earlier in the batch. The
    /// batch's merged functions are scanned at execute time, when all of
    /// them are known.
    index_callers: Vec<FuncId>,
}

/// A partitioned call-graph-update plan for a batch of validated merges —
/// the parallel replacement for serial [`commit_merge`] loops.
///
/// [`RewritePlan::add_merge`] records, per merge, the rewrite description
/// of both sides and the callers of each deletable side (via the
/// incremental [`CallSiteIndex`]). [`RewritePlan::execute`] then scans
/// the batch's merged functions (absent from the index, but their bodies
/// can carry rewritable call sites — recursion, or a later merge built
/// from a caller of an earlier side), groups every rewrite **by
/// caller** — each caller is one partition, mutated exclusively by one
/// task list — detaches the partitions from the module, and runs them on
/// the worker pool: disjoint callers in parallel, a caller touched by
/// multiple merges (or by both sides of one merge) serially within its
/// partition, in the order the merges were added. Every cross-caller
/// effect of the serial loop is hoisted into the sequential plan/assemble
/// steps — cast container types are pre-interned in the serial order
/// (`prepare_cast_tys`), deletions are deferred past every rewrite — so
/// the result is bit-identical, at any thread count, to building every
/// merged function first and then running serial [`commit_merge`] once
/// per merge in add order (property-tested in `tests/rewrite_plan.rs`).
///
/// Batch contract: the originals of the added merges must be pairwise
/// distinct functions that existed before the batch — a merged function
/// produced by this batch cannot itself be a side of a later merge in
/// the same batch (the paper's feedback loop commits such merges one
/// plan at a time, as the pipeline does; `add_merge` asserts this).
/// `sites` must describe the module state before any merge of the batch
/// (the batch's own merged functions are scanned directly, so they may
/// be present in the module but need not be indexed).
#[derive(Debug, Default)]
pub struct RewritePlan {
    /// Both sides of every added merge, in add order.
    sides: Vec<PlannedSide>,
    /// Sides already planned by this batch: their bodies are replaced or
    /// removed before any later rewrite would reach them serially, so
    /// later merges must not schedule rewrites inside them.
    retired: HashSet<FuncId>,
    /// Merged functions of the batch — live in the module but absent
    /// from the call-site index; scanned at execute time.
    merged: Vec<FuncId>,
}

impl RewritePlan {
    /// An empty plan.
    pub fn new() -> RewritePlan {
        RewritePlan::default()
    }

    /// Records the call-graph update of one merge (both sides) in the
    /// batch. Pure bookkeeping — the module is only read.
    ///
    /// # Panics
    ///
    /// Panics on a batch-contract violation: a side that is a merged
    /// function of this batch, or a side (or merged function) planned
    /// twice. Rewrites targeting a batch-produced function only exist
    /// after earlier partitions ran, so they cannot be planned
    /// statically; committing such a merge silently wrong would be far
    /// worse than refusing it — use one plan per merge (the pipeline's
    /// configuration) for feedback-loop merges.
    pub fn add_merge(&mut self, module: &Module, info: &MergeInfo, sites: &CallSiteIndex) {
        for side in [info.f1, info.f2] {
            assert!(
                !self.merged.contains(&side),
                "batch contract: side {side} is a merged function produced by this batch"
            );
            assert!(
                !self.retired.contains(&side),
                "batch contract: side {side} already planned by this batch"
            );
        }
        assert!(
            !self.merged.contains(&info.merged),
            "batch contract: merged function {} planned twice",
            info.merged
        );
        self.merged.push(info.merged);
        for (func, first) in [(info.f1, true), (info.f2, false)] {
            let rw = CallRewrite::for_side(module, info, first);
            let (disposition, index_callers) = if can_delete(module, func) {
                // Callers in module order: the index's committed view,
                // minus the function itself (a serial scan skips it) and
                // anything this batch already retired.
                let callers: Vec<FuncId> = sites
                    .callers_of(func)
                    .into_iter()
                    .filter(|&g| g != func && !self.retired.contains(&g) && module.is_live(g))
                    .collect();
                (Disposition::Deleted, callers)
            } else {
                // Keep the symbol; external callers keep its signature.
                (Disposition::Thunk, Vec::new())
            };
            self.sides.push(PlannedSide { func, rw, disposition, index_callers });
            self.retired.insert(func);
        }
    }

    /// Number of merges added to the batch so far.
    pub fn merges(&self) -> usize {
        self.sides.len() / 2
    }

    /// Sides retired by the batch so far (both originals of every added
    /// merge). The pipeline's batch-eligibility rules consult this: a
    /// merge whose callers or merged-body callees intersect the retired
    /// set would interact with a pending rewrite and must flush first.
    pub fn retired(&self) -> &HashSet<FuncId> {
        &self.retired
    }

    /// Merged functions of the batch, in add order.
    pub fn merged_funcs(&self) -> &[FuncId] {
        &self.merged
    }

    /// Executes the batch: assembles the caller partitions (including the
    /// batch's merged functions, scanned once each), pre-interns the cast
    /// container types in serial commit order, runs every partition on
    /// `pool` (or inline, without a pool / on a single-thread pool), and
    /// finally removes the deletable originals. Returns one
    /// [`CommitResult`] per added merge, in add order.
    ///
    /// # Errors
    ///
    /// Propagates cast construction failures (programming errors guarded
    /// by tests); like a failed serial commit, the module may be left
    /// partially rewritten.
    pub fn execute(
        self,
        module: &mut Module,
        pool: Option<&ThreadPool>,
    ) -> Result<Vec<CommitResult>, MergeError> {
        // One body scan per batch merged function, shared by every side.
        let merged_outs: Vec<(FuncId, HashMap<FuncId, usize>)> =
            self.merged.iter().map(|&m| (m, outgoing_calls(module.func(m)))).collect();
        let mut tasks: HashMap<FuncId, Vec<RewriteTask>> = HashMap::new();
        let mut side_touched: Vec<Vec<FuncId>> = Vec::with_capacity(self.sides.len());
        for side in &self.sides {
            match side.disposition {
                Disposition::Deleted => {
                    let mut callers: BTreeSet<FuncId> =
                        side.index_callers.iter().copied().collect();
                    callers.extend(
                        merged_outs
                            .iter()
                            .filter(|(_, outs)| outs.contains_key(&side.func))
                            .map(|&(m, _)| m),
                    );
                    if !callers.is_empty() {
                        prepare_side_casts(&mut module.types, &side.rw)?;
                    }
                    for &g in &callers {
                        tasks
                            .entry(g)
                            .or_default()
                            .push(RewriteTask::Calls { from: side.func, rw: side.rw.clone() });
                    }
                    side_touched.push(callers.into_iter().collect());
                }
                Disposition::Thunk => {
                    prepare_side_casts(&mut module.types, &side.rw)?;
                    tasks
                        .entry(side.func)
                        .or_default()
                        .push(RewriteTask::Thunk { rw: side.rw.clone() });
                    side_touched.push(Vec::new());
                }
            }
        }
        let mut order: Vec<FuncId> = tasks.keys().copied().collect();
        order.sort_unstable();
        let task_lists: Vec<Vec<RewriteTask>> =
            order.iter().map(|g| tasks.remove(g).expect("planned partition")).collect();
        let results: Vec<Result<(), MergeError>> =
            module.with_detached_functions(&order, |types, funcs| match pool {
                Some(pool) if pool.current_num_threads() > 1 && funcs.len() > 1 => {
                    let mut results: Vec<Result<(), MergeError>> = Vec::new();
                    results.resize_with(funcs.len(), || Ok(()));
                    pool.scope(|s| {
                        for ((f, tasks), slot) in
                            funcs.iter_mut().zip(&task_lists).zip(results.iter_mut())
                        {
                            s.spawn(move |_| *slot = run_partition(f, types, tasks));
                        }
                    });
                    results
                }
                _ => funcs
                    .iter_mut()
                    .zip(&task_lists)
                    .map(|(f, tasks)| run_partition(f, types, tasks))
                    .collect(),
            });
        for r in results {
            r?;
        }
        let mut out = Vec::with_capacity(self.sides.len() / 2);
        for (pair, pair_touched) in self.sides.chunks(2).zip(side_touched.chunks(2)) {
            let mut touched: Vec<FuncId> = Vec::new();
            let mut disp = [Disposition::Thunk; 2];
            for (k, side) in pair.iter().enumerate() {
                disp[k] = side.disposition;
                touched.extend(&pair_touched[k]);
                if side.disposition == Disposition::Deleted {
                    module.remove_function(side.func);
                }
            }
            touched.sort();
            touched.dedup();
            out.push(CommitResult { first: disp[0], second: disp[1], touched });
        }
        Ok(out)
    }
}

/// Runs one caller partition: its rewrite tasks, in batch order, against
/// the detached function. Only `f` is mutated; `types` is read-only.
fn run_partition(
    f: &mut Function,
    types: &TypeStore,
    tasks: &[RewriteTask],
) -> Result<(), MergeError> {
    for task in tasks {
        match task {
            RewriteTask::Calls { from, rw } => {
                let call_sites = call_sites_of(f, *from);
                debug_assert!(!call_sites.is_empty(), "planned caller without call sites");
                for c in call_sites {
                    rewrite_one_call_in(f, types, c, rw)?;
                }
            }
            RewriteTask::Thunk { rw } => make_thunk_in(f, types, rw)?,
        }
    }
    Ok(())
}

/// Pre-interns, at merge-decision time, the cast container types the
/// serial commit of `info` would intern right now — so a *deferred*
/// (batched) commit leaves the type store evolving bit-identically to
/// committing immediately. Only thunk sides intern here: the pipeline's
/// batch-eligibility rules guarantee every deletable side has zero
/// callers, and a caller-less deleted side interns nothing serially
/// either. When the batch flushes, [`RewritePlan::execute`] re-runs the
/// same preparation, which the type store's interning dedupe turns into
/// a no-op.
///
/// # Errors
///
/// Propagates cast construction failures.
pub(crate) fn prepare_commit_casts(
    module: &mut Module,
    info: &MergeInfo,
) -> Result<(), MergeError> {
    for (func, first) in [(info.f1, true), (info.f2, false)] {
        if !can_delete(module, func) {
            let rw = CallRewrite::for_side(module, info, first);
            prepare_side_casts(&mut module.types, &rw)?;
        }
    }
    Ok(())
}

/// [`commit_merge`] through a single-merge [`RewritePlan`]: identical
/// output, but the per-caller rewrite partitions execute on `pool` (pass
/// `None` to run them inline). The pipeline's commit stage uses this so
/// the last serial per-merge loop — call-site rewriting and thunking —
/// scales with the worker pool.
///
/// # Errors
///
/// See [`commit_merge`].
pub fn commit_merge_partitioned(
    module: &mut Module,
    info: &MergeInfo,
    sites: &CallSiteIndex,
    pool: Option<&ThreadPool>,
) -> Result<CommitResult, MergeError> {
    let mut plan = RewritePlan::new();
    plan.add_merge(module, info, sites);
    let mut results = plan.execute(module, pool)?;
    Ok(results.pop().expect("exactly one merge planned"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_pair, MergeConfig};
    use fmsa_ir::{FuncBuilder, Module};

    fn pair_with_caller() -> (Module, FuncId, FuncId, FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let mut fns = Vec::new();
        for (name, c) in [("ta", 3), ("tb", 5)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..8 {
                v = b.mul(v, b.const_i32(k + 2));
                v = b.xor(v, b.const_i32(c));
            }
            b.ret(Some(v));
        }
        fns.push(m.func_by_name("ta").expect("ta"));
        fns.push(m.func_by_name("tb").expect("tb"));
        let caller = m.create_function("caller", fn_ty);
        {
            let (ta, tb) = (fns[0], fns[1]);
            let mut b = FuncBuilder::new(&mut m, caller);
            let e = b.block("entry");
            b.switch_to(e);
            let x = b.call(ta, vec![Value::Param(0)]);
            let y = b.call(tb, vec![x]);
            b.ret(Some(y));
        }
        (m, fns[0], fns[1], caller)
    }

    #[test]
    fn call_site_counting() {
        let (m, ta, tb, caller) = pair_with_caller();
        assert_eq!(count_call_sites(&m, ta), 1);
        assert_eq!(count_call_sites(&m, tb), 1);
        assert_eq!(count_call_sites(&m, caller), 0);
    }

    #[test]
    fn deletability_rules() {
        let (mut m, ta, _, _) = pair_with_caller();
        assert!(can_delete(&m, ta), "internal and not address-taken");
        m.func_mut(ta).linkage = Linkage::External;
        assert!(!can_delete(&m, ta), "external linkage pins the symbol");
        m.func_mut(ta).linkage = Linkage::Internal;
        m.func_mut(ta).address_taken = true;
        assert!(!can_delete(&m, ta), "address-taken pins the symbol");
    }

    #[test]
    fn commit_deletes_internal_and_thunks_external() {
        let (mut m, ta, tb, _) = pair_with_caller();
        m.func_mut(tb).linkage = Linkage::External;
        let info = merge_pair(&mut m, ta, tb, &MergeConfig::default()).expect("merges");
        let result = commit_merge(&mut m, &info).expect("commit");
        assert_eq!(result.first, Disposition::Deleted);
        assert_eq!(result.second, Disposition::Thunk);
        assert!(!m.is_live(ta));
        assert!(m.is_live(tb));
        // The caller was touched (its call to ta was rewritten).
        assert!(!result.touched.is_empty());
        assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    }

    #[test]
    fn partitioned_commit_matches_serial_at_any_thread_count() {
        use fmsa_ir::printer::print_module;
        for threads in [1usize, 2, 4, 8] {
            let (mut serial_m, ta, tb, _) = pair_with_caller();
            serial_m.func_mut(tb).linkage = Linkage::External;
            let info = merge_pair(&mut serial_m, ta, tb, &MergeConfig::default()).expect("merges");
            let serial = commit_merge(&mut serial_m, &info).expect("commit");

            let (mut part_m, ta, tb, _) = pair_with_caller();
            part_m.func_mut(tb).linkage = Linkage::External;
            let sites = crate::callsites::CallSiteIndex::build(&part_m);
            let info = merge_pair(&mut part_m, ta, tb, &MergeConfig::default()).expect("merges");
            let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("pool");
            let partitioned =
                commit_merge_partitioned(&mut part_m, &info, &sites, Some(&pool)).expect("commit");
            assert_eq!(serial, partitioned, "at {threads} threads");
            assert_eq!(
                print_module(&serial_m),
                print_module(&part_m),
                "module text at {threads} threads"
            );
            assert!(fmsa_ir::verify_module(&part_m).is_empty());
        }
    }

    #[test]
    #[should_panic(expected = "merged function produced by this batch")]
    fn batch_rejects_feedback_loop_merges() {
        // A merged function of the batch cannot be a side of a later
        // merge in the same batch: its incoming calls only exist after
        // earlier partitions ran, so they cannot be planned statically.
        let (mut m, ta, tb, _) = pair_with_caller();
        let sites = crate::callsites::CallSiteIndex::build(&m);
        let info1 = merge_pair(&mut m, ta, tb, &MergeConfig::default()).expect("merges");
        let mut info2 = info1.clone();
        info2.f1 = info1.merged; // feedback-loop shape
        let mut plan = RewritePlan::new();
        plan.add_merge(&m, &info1, &sites);
        plan.add_merge(&m, &info2, &sites);
    }

    #[test]
    fn thunk_body_shape() {
        let (mut m, ta, tb, _) = pair_with_caller();
        m.func_mut(ta).linkage = Linkage::External;
        m.func_mut(tb).linkage = Linkage::External;
        let info = merge_pair(&mut m, ta, tb, &MergeConfig::default()).expect("merges");
        commit_merge(&mut m, &info).expect("commit");
        for f in [ta, tb] {
            let func = m.func(f);
            assert_eq!(func.block_count(), 1, "thunk is a single block");
            assert_eq!(func.inst_count(), 2, "thunk = call + ret");
            let first = func.block(func.entry()).insts[0];
            assert_eq!(func.inst(first).opcode, Opcode::Call);
            assert_eq!(func.inst(first).operands[0], Value::Func(info.merged));
        }
    }
}
