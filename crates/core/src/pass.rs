//! The FMSA optimization driver (paper §IV, Fig. 7).
//!
//! "It starts by precomputing and caching fingerprints for all functions
//! ... For each function f1, we use a priority queue to rank the topmost
//! similar candidates ... We then perform this candidate exploration in a
//! greedy fashion, terminating after finding the first candidate that
//! results in a profitable merge and committing that merge operation. ...
//! the new function is added to the optimization working list. Because of
//! this feedback loop, merge operations can also be performed on functions
//! that resulted from previous merge operations."
//!
//! The driver instruments each step with a timer so the harness can
//! regenerate the paper's compile-time breakdown (Fig. 13).

// This module *implements* the deprecated `FmsaOptions` surface; the
// replacement ([`crate::Config`]) converts into it.
#![allow(deprecated)]

use crate::fingerprint::Fingerprint;
use crate::linearize::linearize;
use crate::merge::{align_with, merge_pair_aligned, MergeConfig, MergeInfo};
use crate::profitability::{evaluate, ProfitReport};
use crate::search::SearchStrategy;
use crate::telemetry::{trace, DecisionOutcome, DecisionRecord};
use crate::thunks::commit_merge;
use fmsa_ir::{FuncId, Module};
use fmsa_target::{CostModel, TargetArch};
use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

/// Options controlling one run of the FMSA pass.
#[deprecated(
    since = "0.7.0",
    note = "use `fmsa_core::Config` (and `fmsa_core::optimize`); `Config::fmsa_options()` \
            converts for the low-level drivers"
)]
#[derive(Debug, Clone)]
pub struct FmsaOptions {
    /// Exploration threshold `t`: how many top-ranked candidates to try per
    /// function (paper evaluates t = 1, 5, 10).
    pub threshold: usize,
    /// Oracle mode: evaluate *every* candidate and commit the most
    /// profitable one — the paper's unrealistic quadratic upper bound.
    /// Forces [`SearchStrategy::Exact`] regardless of [`FmsaOptions::search`]
    /// (a shortlist would invalidate the upper-bound claim).
    pub oracle: bool,
    /// Target whose TTI-like cost model drives profitability.
    pub arch: TargetArch,
    /// Per-pair merge configuration.
    pub merge: MergeConfig,
    /// Function names excluded from merging (the paper's profile-guided
    /// hot-function exclusion, §V-D).
    pub exclude: HashSet<String>,
    /// Candidates below this similarity are never attempted.
    pub min_similarity: f64,
    /// Canonicalize intra-block instruction order before merging — the
    /// paper's future-work extension ("allowing instruction reordering to
    /// maximize the number of matches"). Semantics-preserving; makes
    /// reordered clones align.
    pub canonicalize: bool,
    /// How merge candidates are searched: the paper's exact pairwise
    /// scan, near-linear MinHash/LSH shortlisting, or (the default)
    /// automatic selection by module size (see [`crate::search`] and
    /// [`crate::search::AUTO_SEARCH_CROSSOVER`]).
    pub search: SearchStrategy,
    /// Per-pair alignment cost bounds, honoured by the pipeline driver
    /// ([`crate::pipeline`]). The sequential driver ignores it — the
    /// paper's reference behaviour aligns every candidate pair in full —
    /// and the default budget never triggers at paper scale, so the two
    /// drivers stay bit-identical on the evaluated workloads.
    pub budget: fmsa_align::AlignmentBudget,
}

impl Default for FmsaOptions {
    fn default() -> Self {
        FmsaOptions {
            threshold: 1,
            oracle: false,
            arch: TargetArch::X86_64,
            merge: MergeConfig::default(),
            exclude: HashSet::new(),
            min_similarity: 0.0,
            canonicalize: false,
            search: SearchStrategy::Auto,
            budget: fmsa_align::AlignmentBudget::default(),
        }
    }
}

impl FmsaOptions {
    /// Convenience: options with a given exploration threshold.
    pub fn with_threshold(t: usize) -> FmsaOptions {
        FmsaOptions { threshold: t, ..FmsaOptions::default() }
    }

    /// Convenience: oracle (exhaustive) exploration.
    pub fn oracle() -> FmsaOptions {
        FmsaOptions { oracle: true, ..FmsaOptions::default() }
    }

    /// Convenience: LSH candidate search with default parameters.
    pub fn with_lsh(t: usize) -> FmsaOptions {
        FmsaOptions { threshold: t, search: SearchStrategy::lsh(), ..FmsaOptions::default() }
    }
}

/// Wall-clock spent in each step of the optimization — the rows of the
/// paper's Fig. 13 breakdown.
#[derive(Debug, Clone, Copy, Default)]
pub struct StepTimers {
    /// Computing and refreshing fingerprints.
    pub fingerprinting: Duration,
    /// Ranking candidates (quadratic in the number of functions).
    pub ranking: Duration,
    /// Linearizing functions.
    pub linearization: Duration,
    /// Needleman-Wunsch alignment (dominant in the paper).
    pub alignment: Duration,
    /// Code generation, parameter merging, and profitability evaluation.
    pub codegen: Duration,
    /// Thunks, call-site rewriting, call-graph update.
    pub update_calls: Duration,
}

impl StepTimers {
    /// Total time across all steps.
    pub fn total(&self) -> Duration {
        self.fingerprinting
            + self.ranking
            + self.linearization
            + self.alignment
            + self.codegen
            + self.update_calls
    }

    /// `(name, seconds)` rows for reporting.
    pub fn rows(&self) -> Vec<(&'static str, f64)> {
        vec![
            ("fingerprinting", self.fingerprinting.as_secs_f64()),
            ("ranking", self.ranking.as_secs_f64()),
            ("linearization", self.linearization.as_secs_f64()),
            ("alignment", self.alignment.as_secs_f64()),
            ("codegen", self.codegen.as_secs_f64()),
            ("updating-calls", self.update_calls.as_secs_f64()),
        ]
    }
}

/// Statistics of one FMSA run.
#[derive(Debug, Clone, Default)]
pub struct FmsaStats {
    /// Committed merge operations.
    pub merges: usize,
    /// Merge attempts (including unprofitable ones that were discarded).
    pub attempted: usize,
    /// For each committed merge, the 1-based rank position of the partner
    /// that won — the data behind the paper's Fig. 8 CDF.
    pub rank_positions: Vec<usize>,
    /// Per-step timers (Fig. 13).
    pub timers: StepTimers,
    /// Module size before the pass, in cost-model bytes.
    pub size_before: u64,
    /// Module size after the pass.
    pub size_after: u64,
    /// Originals deleted outright.
    pub deleted: usize,
    /// Originals kept as thunks.
    pub thunks: usize,
    /// Pipeline-only telemetry; `None` for the sequential driver.
    pub pipeline: Option<crate::pipeline::PipelineStats>,
    /// Pairs the pipeline quarantined instead of merging (caught panics,
    /// verifier rejections). Always empty for the sequential driver,
    /// which has no fault boundaries.
    pub quarantine: crate::quarantine::QuarantineLog,
    /// One structured record per merge attempt: who paired with whom,
    /// similarity, alignment score, Δ, and how it resolved. Bounded;
    /// outcome counts stay exact past the bound (see
    /// [`crate::telemetry::decisions`]).
    pub decisions: crate::telemetry::DecisionLog,
}

impl FmsaStats {
    /// Code-size reduction achieved, in percent.
    pub fn reduction_percent(&self) -> f64 {
        fmsa_target::reduction_percent(self.size_before, self.size_after)
    }
}

/// Runs the FMSA optimization over `module`.
pub fn run_fmsa(module: &mut Module, opts: &FmsaOptions) -> FmsaStats {
    let _pass_span = trace::span("fmsa", "pass");
    let cm = CostModel::new(opts.arch);
    let mut stats = FmsaStats { size_before: cm.module_size(module), ..FmsaStats::default() };

    let SeededPass { mut fingerprints, mut index, mut worklist, mut live } =
        seed_pass(module, opts, &mut stats.timers, None);

    while let Some(f1) = worklist.pop_front() {
        if !live.contains(&f1) || !module.is_live(f1) {
            continue;
        }
        // Query the index for f1's top candidates, scoring borrowed
        // fingerprints straight out of the live map.
        let t0 = Instant::now();
        let threshold = if opts.oracle { usize::MAX } else { opts.threshold };
        let candidates =
            index.candidates(f1, &fingerprints[&f1], &fingerprints, threshold, opts.min_similarity);
        stats.timers.ranking += t0.elapsed();

        let mut best: Option<(usize, MergeInfo, ProfitReport)> = None;
        // Decision records for this subject's attempts. The winning
        // attempt's outcome is fixed up once the commit resolves, then
        // the whole batch lands in `stats.decisions`.
        let mut attempt_recs: Vec<DecisionRecord> = Vec::new();
        let mut best_rec: Option<usize> = None;
        for (pos, cand) in candidates.iter().enumerate() {
            stats.attempted += 1;
            let _att_span = trace::span_with("fmsa", "merge_attempt", || {
                vec![
                    ("subject", module.func(f1).name.clone()),
                    ("candidate", module.func(cand.func).name.clone()),
                ]
            });
            let rec = DecisionRecord {
                subject: module.func(f1).name.clone(),
                candidate: module.func(cand.func).name.clone(),
                similarity: cand.similarity,
                rank: (pos + 1) as u32,
                align_score: None,
                delta: None,
                outcome: DecisionOutcome::Failed,
            };
            let t0 = Instant::now();
            let seq1 = linearize(module.func(f1));
            let seq2 = linearize(module.func(cand.func));
            stats.timers.linearization += t0.elapsed();
            let t0 = Instant::now();
            let alignment = align_with(
                module,
                f1,
                cand.func,
                &seq1,
                &seq2,
                &opts.merge.scoring,
                opts.merge.algorithm,
            );
            stats.timers.alignment += t0.elapsed();
            let rec = DecisionRecord { align_score: Some(alignment.score), ..rec };
            let t0 = Instant::now();
            let merged =
                merge_pair_aligned(module, f1, cand.func, seq1, seq2, alignment, &opts.merge);
            let outcome = match merged {
                Ok(info) => {
                    let report = evaluate(module, &cm, &info);
                    Some((info, report))
                }
                Err(_) => None,
            };
            stats.timers.codegen += t0.elapsed();
            match outcome {
                Some((info, report)) if report.is_profitable() => {
                    let delta = Some(report.delta);
                    if opts.oracle {
                        // Keep only the best profitable candidate.
                        let better =
                            best.as_ref().map(|(_, _, b)| report.delta > b.delta).unwrap_or(true);
                        if better {
                            if let Some((_, old, _)) = best.take() {
                                module.remove_function(old.merged);
                                // The previous winner's body was just
                                // discarded: by final disposition it was
                                // not merged (its positive Δ survives in
                                // the record).
                                if let Some(i) = best_rec {
                                    attempt_recs[i].outcome = DecisionOutcome::Unprofitable;
                                }
                            }
                            best = Some((pos + 1, info, report));
                            best_rec = Some(attempt_recs.len());
                            attempt_recs.push(DecisionRecord {
                                delta,
                                outcome: DecisionOutcome::Merged,
                                ..rec
                            });
                        } else {
                            module.remove_function(info.merged);
                            attempt_recs.push(DecisionRecord {
                                delta,
                                outcome: DecisionOutcome::Unprofitable,
                                ..rec
                            });
                        }
                    } else {
                        best = Some((pos + 1, info, report));
                        best_rec = Some(attempt_recs.len());
                        attempt_recs.push(DecisionRecord {
                            delta,
                            outcome: DecisionOutcome::Merged,
                            ..rec
                        });
                        break; // greedy: first profitable candidate wins
                    }
                }
                Some((info, report)) => {
                    module.remove_function(info.merged);
                    attempt_recs.push(DecisionRecord {
                        delta: Some(report.delta),
                        outcome: DecisionOutcome::Unprofitable,
                        ..rec
                    });
                }
                None => attempt_recs.push(rec),
            }
        }

        let Some((pos, info, _)) = best else {
            for r in attempt_recs {
                stats.decisions.push(r);
            }
            continue;
        };
        // Commit: thunks / call-graph update (§III-A).
        let t0 = Instant::now();
        let commit = match commit_merge(module, &info) {
            Ok(c) => c,
            Err(_) => {
                // Should not happen (guarded by tests); drop the merge.
                module.remove_function(info.merged);
                if let Some(i) = best_rec {
                    attempt_recs[i].outcome = DecisionOutcome::Failed;
                }
                for r in attempt_recs {
                    stats.decisions.push(r);
                }
                continue;
            }
        };
        stats.timers.update_calls += t0.elapsed();
        stats.merges += 1;
        stats.rank_positions.push(pos);
        for d in [commit.first, commit.second] {
            match d {
                crate::thunks::Disposition::Deleted => stats.deleted += 1,
                crate::thunks::Disposition::Thunk => stats.thunks += 1,
            }
        }
        for r in attempt_recs {
            stats.decisions.push(r);
        }
        // Maintain the pool and index: originals leave, the merged function
        // joins the working list (feedback loop), rewritten callers get
        // fresh fingerprints and index entries.
        live.remove(&f1);
        live.remove(&info.f2);
        fingerprints.remove(&f1);
        fingerprints.remove(&info.f2);
        index.remove(f1);
        index.remove(info.f2);
        let t0 = Instant::now();
        for g in commit.touched {
            if live.contains(&g) && module.is_live(g) {
                let fp = Fingerprint::of(module, g);
                index.insert(g, &fp); // refresh: insert replaces the entry
                fingerprints.insert(g, fp);
            }
        }
        let merged_fp = Fingerprint::of(module, info.merged);
        index.insert(info.merged, &merged_fp);
        fingerprints.insert(info.merged, merged_fp);
        stats.timers.fingerprinting += t0.elapsed();
        live.insert(info.merged);
        worklist.push_back(info.merged);
    }

    stats.size_after = cm.module_size(module);
    stats
}

pub(crate) fn eligible(module: &Module, f: FuncId, opts: &FmsaOptions) -> bool {
    let func = module.func(f);
    !func.is_declaration() && !opts.exclude.contains(&func.name)
}

/// The state both drivers start from: fingerprints, the seeded search
/// index, and the initial worklist/live set.
pub(crate) struct SeededPass {
    pub fingerprints: HashMap<FuncId, Fingerprint>,
    pub index: Box<dyn crate::search::CandidateSearch>,
    pub worklist: VecDeque<FuncId>,
    pub live: HashSet<FuncId>,
}

/// Shared setup of the sequential and pipeline drivers. Keeping this in
/// one place is part of the pipeline's bit-identity guarantee: both
/// drivers must start from exactly the same seeded state.
///
/// With a `pool`, fingerprinting and index seeding run on the workers —
/// `Fingerprint::of` and `MinHasher::signature` are pure functions of the
/// (quiescent) module, and the sharded batch insert preserves serial
/// bucket order, so the seeded state is bit-identical either way. At the
/// million-function scale these two loops are the entire startup cost.
pub(crate) fn seed_pass(
    module: &mut Module,
    opts: &FmsaOptions,
    timers: &mut StepTimers,
    pool: Option<&rayon::ThreadPool>,
) -> SeededPass {
    // Optional future-work extension: canonical intra-block instruction
    // order, so reordered clones linearize identically.
    if opts.canonicalize {
        let t0 = Instant::now();
        for f in module.func_ids() {
            if eligible(module, f, opts) {
                fmsa_ir::passes::canonicalize_block_order(module.func_mut(f));
            }
        }
        timers.linearization += t0.elapsed();
    }
    // Fingerprint every eligible function (cached; §IV) and seed the
    // candidate-search index. The index is maintained incrementally through
    // the feedback loop — no per-iteration pool is ever rebuilt.
    let t0 = Instant::now();
    let available: Vec<FuncId> =
        module.func_ids().into_iter().filter(|&f| eligible(module, f, opts)).collect();
    let fingerprints: HashMap<FuncId, Fingerprint> = match pool {
        Some(pool) if pool.current_num_threads() > 1 && available.len() > 1 => {
            let module = &*module;
            pool.par_map(&available, |_, &f| (f, Fingerprint::of(module, f))).into_iter().collect()
        }
        _ => available.iter().map(|&f| (f, Fingerprint::of(module, f))).collect(),
    };
    timers.fingerprinting += t0.elapsed();
    let t0 = Instant::now();
    // The oracle's "best possible candidate" claim requires an exhaustive
    // scan: shortlisting would silently turn its upper bound into a guess,
    // so oracle mode always searches exactly regardless of `opts.search`.
    // `Auto` resolves here, against the eligible-function count, so both
    // drivers (sequential and pipeline) pick the same implementation.
    let strategy =
        if opts.oracle { SearchStrategy::Exact } else { opts.search.resolve(available.len()) };
    let mut index = strategy.build();
    let items: Vec<(FuncId, &Fingerprint)> =
        available.iter().map(|&f| (f, &fingerprints[&f])).collect();
    index.insert_batch(&items, pool);
    timers.ranking += t0.elapsed();
    let worklist: VecDeque<FuncId> = available.iter().copied().collect();
    let live: HashSet<FuncId> = available.into_iter().collect();
    SeededPass { fingerprints, index, worklist, live }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};

    fn clone_family(m: &mut Module, count: usize, body_len: usize) -> Vec<FuncId> {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let mut out = Vec::new();
        for k in 0..count {
            let f = m.create_function(format!("fam{k}"), fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..body_len {
                v = b.add(v, b.const_i32(j as i32));
                v = b.mul(v, Value::Param(1));
            }
            // One differing constant per clone.
            v = b.xor(v, b.const_i32(k as i32 + 100));
            b.ret(Some(v));
            out.push(f);
        }
        out
    }

    #[test]
    fn merges_a_clone_family_and_shrinks_module() {
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 12);
        let stats = run_fmsa(&mut m, &FmsaOptions::default());
        assert!(stats.merges >= 2, "{stats:?}");
        assert!(stats.size_after < stats.size_before, "{stats:?}");
        assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    }

    #[test]
    fn feedback_loop_merges_merged_functions() {
        // 4 clones: pairwise merges produce 2 merged functions that are
        // themselves similar and merge again -> 3 total merges.
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 12);
        let stats = run_fmsa(&mut m, &FmsaOptions::with_threshold(10));
        assert_eq!(stats.merges, 3, "{stats:?}");
    }

    #[test]
    fn exclusion_prevents_merging() {
        let mut m = Module::new("m");
        clone_family(&mut m, 2, 12);
        let mut opts = FmsaOptions::default();
        opts.exclude.insert("fam0".to_owned());
        let stats = run_fmsa(&mut m, &opts);
        assert_eq!(stats.merges, 0);
        assert_eq!(stats.size_before, stats.size_after);
    }

    #[test]
    fn oracle_finds_at_least_as_much_as_greedy() {
        let mut m1 = Module::new("m1");
        clone_family(&mut m1, 5, 10);
        let greedy = run_fmsa(&mut m1, &FmsaOptions::default());
        let mut m2 = Module::new("m2");
        clone_family(&mut m2, 5, 10);
        let oracle = run_fmsa(&mut m2, &FmsaOptions::oracle());
        assert!(oracle.size_after <= greedy.size_after, "greedy={greedy:?} oracle={oracle:?}");
    }

    #[test]
    fn rank_positions_recorded() {
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 12);
        let stats = run_fmsa(&mut m, &FmsaOptions::with_threshold(5));
        assert_eq!(stats.rank_positions.len(), stats.merges);
        assert!(stats.rank_positions.iter().all(|&p| (1..=5).contains(&p)));
    }

    #[test]
    fn lsh_search_merges_clone_families_too() {
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 12);
        let stats = run_fmsa(&mut m, &FmsaOptions::with_lsh(10));
        assert!(stats.merges >= 2, "{stats:?}");
        assert!(stats.size_after < stats.size_before, "{stats:?}");
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn lsh_feedback_loop_reaches_merged_functions() {
        // The incremental index must contain functions created mid-pass:
        // 4 clones merge pairwise, and the two merged functions must find
        // each other through the index for the third merge.
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 12);
        let stats = run_fmsa(&mut m, &FmsaOptions::with_lsh(10));
        assert_eq!(stats.merges, 3, "{stats:?}");
    }

    #[test]
    fn exact_and_lsh_agree_on_small_families() {
        let mut m1 = Module::new("m1");
        clone_family(&mut m1, 6, 10);
        let exact = run_fmsa(&mut m1, &FmsaOptions::with_threshold(5));
        let mut m2 = Module::new("m2");
        clone_family(&mut m2, 6, 10);
        let lsh = run_fmsa(&mut m2, &FmsaOptions::with_lsh(5));
        assert_eq!(exact.merges, lsh.merges, "exact={exact:?} lsh={lsh:?}");
        assert_eq!(exact.size_after, lsh.size_after);
    }

    #[test]
    fn oracle_overrides_lsh_shortlisting() {
        // oracle + Lsh must behave exactly like oracle + Exact: the upper
        // bound is only meaningful over an exhaustive scan.
        let mut m1 = Module::new("m1");
        clone_family(&mut m1, 5, 10);
        let exact = run_fmsa(&mut m1, &FmsaOptions::oracle());
        let mut m2 = Module::new("m2");
        clone_family(&mut m2, 5, 10);
        let opts = FmsaOptions { search: crate::SearchStrategy::lsh(), ..FmsaOptions::oracle() };
        let lsh = run_fmsa(&mut m2, &opts);
        assert_eq!(exact.merges, lsh.merges);
        assert_eq!(exact.size_after, lsh.size_after);
        assert_eq!(exact.rank_positions, lsh.rank_positions);
    }

    #[test]
    fn timers_accumulate() {
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 20);
        let stats = run_fmsa(&mut m, &FmsaOptions::default());
        assert!(stats.timers.total() > Duration::ZERO);
        assert!(stats.timers.alignment > Duration::ZERO);
    }
}
