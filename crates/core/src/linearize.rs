//! Linearization of CFGs into sequences (paper §III-B).
//!
//! "It takes the CFG of the function, specifies a traversal order of the
//! basic blocks, and for each block outputs its label and its instructions.
//! ... We empirically chose a reverse post-order traversal with a canonical
//! ordering of successor basic blocks."

use fmsa_ir::{cfg, BlockId, FuncId, Function, InstId, Module};
use std::collections::HashMap;
use std::sync::Arc;

/// One element of a linearized function: the alphabet of the sequence
/// alignment is "all possible typed instructions and labels" (§III-C).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Entry {
    /// A basic-block label.
    Label(BlockId),
    /// An instruction.
    Inst(InstId),
}

impl Entry {
    /// The block id, if this is a label.
    pub fn as_label(&self) -> Option<BlockId> {
        match self {
            Entry::Label(b) => Some(*b),
            Entry::Inst(_) => None,
        }
    }

    /// The instruction id, if this is an instruction.
    pub fn as_inst(&self) -> Option<InstId> {
        match self {
            Entry::Inst(i) => Some(*i),
            Entry::Label(_) => None,
        }
    }
}

/// Linearizes `f`: reverse post-order over reachable blocks, emitting each
/// block's label followed by its instructions in block order. Instruction
/// order inside blocks is preserved, and CFG edges stay implicit in branch
/// operands, exactly as in the paper's Fig. 4.
pub fn linearize(f: &Function) -> Vec<Entry> {
    let mut out = Vec::with_capacity(f.inst_count() + f.block_count());
    for b in cfg::reverse_post_order(f) {
        out.push(Entry::Label(b));
        out.extend(f.block(b).insts.iter().map(|&i| Entry::Inst(i)));
    }
    out
}

/// A cache of linearizations keyed by function id.
///
/// The sequential pass linearizes both functions of every merge attempt,
/// so a function that appears as a candidate of many subjects is
/// re-linearized once per attempt. The pipeline keeps one
/// [`LinearizationCache`] for the whole pass and invalidates entries only
/// when a commit mutates the function (thunked originals, rewritten
/// callers), so each function is linearized once per *generation* instead.
///
/// Entries are `Arc<[Entry]>` so the read-only parallel prepare stage can
/// share them across workers without cloning; the cache itself is filled
/// sequentially (it hands out shared references once populated).
#[derive(Debug, Clone, Default)]
pub struct LinearizationCache {
    map: HashMap<FuncId, Arc<[Entry]>>,
}

impl LinearizationCache {
    /// An empty cache.
    pub fn new() -> LinearizationCache {
        LinearizationCache::default()
    }

    /// The linearization of `f`, computing and caching it on a miss.
    pub fn get(&mut self, module: &Module, f: FuncId) -> Arc<[Entry]> {
        Arc::clone(
            self.map
                .entry(f)
                .or_insert_with(|| Arc::from(linearize(module.func(f)).into_boxed_slice())),
        )
    }

    /// The cached linearization of `f`, if present (lock-free read path
    /// for workers; the scheduler pre-fills entries before a generation).
    pub fn cached(&self, f: FuncId) -> Option<Arc<[Entry]>> {
        self.map.get(&f).map(Arc::clone)
    }

    /// Fills the cache for every function of `funcs` not already present,
    /// computing the missing linearizations on `pool` (inline on a
    /// single-thread pool). Returns the summed per-function compute time
    /// — the stage's CPU time, reported against its wall-clock by the
    /// pipeline. [`linearize`] is deterministic and the insertions are
    /// keyed by function id, so a pre-filled cache is indistinguishable
    /// from one filled by sequential [`LinearizationCache::get`] calls.
    pub fn prefill(
        &mut self,
        module: &Module,
        funcs: &[FuncId],
        pool: &rayon::ThreadPool,
    ) -> std::time::Duration {
        let mut misses: Vec<FuncId> = Vec::new();
        let mut seen: std::collections::HashSet<FuncId> = std::collections::HashSet::new();
        for &f in funcs {
            if !self.map.contains_key(&f) && seen.insert(f) {
                misses.push(f);
            }
        }
        let cpu = std::sync::atomic::AtomicU64::new(0);
        let computed = pool.par_map(&misses, |_, &f| {
            let t = std::time::Instant::now();
            let seq: Arc<[Entry]> = Arc::from(linearize(module.func(f)).into_boxed_slice());
            cpu.fetch_add(t.elapsed().as_nanos() as u64, std::sync::atomic::Ordering::Relaxed);
            (f, seq)
        });
        for (f, seq) in computed {
            self.map.insert(f, seq);
        }
        std::time::Duration::from_nanos(cpu.into_inner())
    }

    /// Drops the entry for `f` (call when the function body changed or the
    /// function was removed).
    pub fn invalidate(&mut self, f: FuncId) {
        self.map.remove(&f);
    }

    /// Number of cached functions.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, IntPredicate, Module, Value};

    fn diamond_module() -> (Module, fmsa_ir::FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let entry = b.block("entry");
        let t = b.block("t");
        let e = b.block("e");
        let join = b.block("join");
        b.switch_to(entry);
        let c = b.icmp(IntPredicate::Sgt, Value::Param(0), b.const_i32(0));
        b.condbr(c, t, e);
        b.switch_to(t);
        b.br(join);
        b.switch_to(e);
        b.br(join);
        b.switch_to(join);
        b.ret(Some(Value::Param(0)));
        (m, f)
    }

    #[test]
    fn label_then_instructions() {
        let (m, f) = diamond_module();
        let seq = linearize(m.func(f));
        // 4 labels + 5 instructions.
        assert_eq!(seq.len(), 9);
        assert!(matches!(seq[0], Entry::Label(_)));
        assert!(matches!(seq[1], Entry::Inst(_))); // icmp
        assert!(matches!(seq[2], Entry::Inst(_))); // condbr
        assert!(matches!(seq[3], Entry::Label(_))); // then
        let labels = seq.iter().filter(|e| e.as_label().is_some()).count();
        assert_eq!(labels, 4);
    }

    #[test]
    fn instruction_order_within_blocks_preserved() {
        let (m, f) = diamond_module();
        let seq = linearize(m.func(f));
        let func = m.func(f);
        // For each block, the instruction subsequence after its label must
        // equal the block's instruction list.
        let mut idx = 0;
        while idx < seq.len() {
            let Entry::Label(b) = seq[idx] else { panic!("expected label at {idx}") };
            let insts = &func.block(b).insts;
            for (k, &expect) in insts.iter().enumerate() {
                assert_eq!(seq[idx + 1 + k], Entry::Inst(expect));
            }
            idx += 1 + insts.len();
        }
    }

    #[test]
    fn deterministic_linearization() {
        let (m, f) = diamond_module();
        assert_eq!(linearize(m.func(f)), linearize(m.func(f)));
    }

    #[test]
    fn declarations_linearize_empty() {
        let mut m = Module::new("m");
        let fn_ty = m.types.func(m.types.void(), vec![]);
        let f = m.create_function("decl", fn_ty);
        assert!(linearize(m.func(f)).is_empty());
    }

    #[test]
    fn prefill_matches_sequential_gets() {
        let (m, f) = diamond_module();
        let pool = rayon::ThreadPoolBuilder::new().num_threads(4).build().expect("pool");
        let mut cache = LinearizationCache::new();
        cache.prefill(&m, &[f, f], &pool);
        assert_eq!(cache.len(), 1, "duplicates collapse to one entry");
        let mut seq_cache = LinearizationCache::new();
        assert_eq!(&cache.cached(f).expect("pre-filled")[..], &seq_cache.get(&m, f)[..]);
        // Pre-filling again is a no-op on hits.
        cache.prefill(&m, &[f], &pool);
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn cache_returns_same_sequence_and_invalidates() {
        let (m, f) = diamond_module();
        let mut cache = LinearizationCache::new();
        assert!(cache.cached(f).is_none());
        let a = cache.get(&m, f);
        assert_eq!(&a[..], &linearize(m.func(f))[..]);
        // Second fetch shares the same allocation.
        let b = cache.get(&m, f);
        assert!(Arc::ptr_eq(&a, &b));
        assert_eq!(cache.len(), 1);
        assert!(cache.cached(f).is_some());
        cache.invalidate(f);
        assert!(cache.cached(f).is_none());
        assert!(cache.is_empty());
    }
}
