//! The profitability cost model (paper §IV-A).
//!
//! ```text
//! Δ({f1,f2}, f1,2) = (c(f1) + c(f2)) − (c(f1,2) + ε)
//! ε = δ(f1, f1,2) + δ(f2, f1,2)
//! ```
//!
//! where `c` is the target-specific code-size cost (our TTI stand-in,
//! [`fmsa_target::CostModel`]) and `δ` covers "(1) the cases where we need
//! to keep the original functions with a call to the merged function; and
//! (2) for the cases where we update the call graph, there might be an
//! extra cost with a call to the merged function due to the increased
//! number of arguments."

use crate::merge::MergeInfo;
use crate::thunks::{can_delete, count_call_sites};
use fmsa_ir::{FuncId, Module, Type};
use fmsa_target::CostModel;

/// Detailed outcome of the Δ computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfitReport {
    /// `c(f1)` in bytes.
    pub size_f1: u64,
    /// `c(f2)` in bytes.
    pub size_f2: u64,
    /// `c(f1,2)` in bytes.
    pub size_merged: u64,
    /// The ε extra-cost term in bytes.
    pub epsilon: u64,
    /// The Δ profit; positive means merging shrinks the program.
    pub delta: i64,
}

impl ProfitReport {
    /// "We consider that the merge operation is profitable if Δ > 0."
    pub fn is_profitable(&self) -> bool {
        self.delta > 0
    }
}

/// Evaluates Δ for a completed (but not yet committed) merge.
///
/// Like the paper, `c(f)` sums per-instruction TTI code-size costs — the
/// fixed prologue/epilogue overhead of the symbol is *not* credited, which
/// keeps merges of dissimilar functions (whose merged body exceeds the sum
/// of the originals) unprofitable.
pub fn evaluate(module: &Module, cm: &CostModel, info: &MergeInfo) -> ProfitReport {
    let size_f1 = cm.body_size(module, info.f1);
    let size_f2 = cm.body_size(module, info.f2);
    let size_merged = cm.body_size(module, info.merged);
    let epsilon = delta_cost(module, cm, info, true) + delta_cost(module, cm, info, false);
    let delta = (size_f1 + size_f2) as i64 - (size_merged + epsilon) as i64;
    ProfitReport { size_f1, size_f2, size_merged, epsilon, delta }
}

/// The δ(f_i, f1,2) term for one side.
fn delta_cost(module: &Module, cm: &CostModel, info: &MergeInfo, first: bool) -> u64 {
    let func: FuncId = if first { info.f1 } else { info.f2 };
    let orig_params = module.func(func).params().len() as u64;
    let merged_params = info.params.merged_tys.len() as u64;
    let extra_args = merged_params.saturating_sub(orig_params);
    let ret_orig = if first { info.ret.ty1 } else { info.ret.ty2 };
    let ret_cast = if ret_orig == info.ret.base || matches!(module.types.get(ret_orig), Type::Void)
    {
        0
    } else {
        // A short bitcast/trunc chain at each use of the result.
        4
    };
    if can_delete(module, func) {
        // Call-graph update: every call site passes extra arguments and may
        // convert the result.
        let sites = count_call_sites(module, func) as u64;
        sites * (extra_args * cm.per_arg_call_cost() + ret_cast)
    } else {
        // Thunk body left in the original symbol: a call forwarding every
        // merged argument plus the return.
        cm.call_cost() + merged_params * cm.per_arg_call_cost() + ret_cast + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_pair, MergeConfig};
    use fmsa_ir::{FuncBuilder, Linkage, Value};
    use fmsa_target::TargetArch;

    /// A pair of near-identical medium functions; merging should win.
    fn similar_pair(m: &mut fmsa_ir::Module) -> (FuncId, FuncId) {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let mut out = Vec::new();
        for (name, c) in [("fa", 3), ("fb", 4)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..10 {
                v = b.add(v, b.const_i32(k));
                v = b.mul(v, Value::Param(1));
            }
            v = b.add(v, b.const_i32(c)); // the single difference
            b.ret(Some(v));
            out.push(f);
        }
        (out[0], out[1])
    }

    #[test]
    fn near_identical_pair_is_profitable() {
        let mut m = fmsa_ir::Module::new("m");
        let (fa, fb) = similar_pair(&mut m);
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merges");
        let cm = CostModel::new(TargetArch::X86_64);
        let report = evaluate(&m, &cm, &info);
        assert!(report.is_profitable(), "{report:?}");
        assert!(report.size_merged < report.size_f1 + report.size_f2);
    }

    #[test]
    fn dissimilar_pair_is_unprofitable() {
        let mut m = fmsa_ir::Module::new("m");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fn1 = m.types.func(i32t, vec![i32t]);
        let fn2 = m.types.func(f64t, vec![f64t]);
        let fa = m.create_function("fa", fn1);
        {
            let mut b = FuncBuilder::new(&mut m, fa);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..8 {
                v = b.xor(v, b.const_i32(k));
            }
            b.ret(Some(v));
        }
        let fb = m.create_function("fb", fn2);
        {
            let mut b = FuncBuilder::new(&mut m, fb);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for _ in 0..8 {
                v = b.fdiv(v, b.const_f64(1.5));
            }
            b.ret(Some(v));
        }
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merge builds");
        let cm = CostModel::new(TargetArch::X86_64);
        let report = evaluate(&m, &cm, &info);
        assert!(!report.is_profitable(), "{report:?}");
    }

    #[test]
    fn external_linkage_pays_thunk_costs() {
        let mut m = fmsa_ir::Module::new("m");
        let (fa, fb) = similar_pair(&mut m);
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merges");
        let cm = CostModel::new(TargetArch::X86_64);
        let deletable = evaluate(&m, &cm, &info);
        m.func_mut(fa).linkage = Linkage::External;
        m.func_mut(fb).linkage = Linkage::External;
        let thunked = evaluate(&m, &cm, &info);
        assert!(
            thunked.epsilon > deletable.epsilon,
            "thunks cost more than call-graph updates with no callers"
        );
        assert!(thunked.delta < deletable.delta);
    }
}
