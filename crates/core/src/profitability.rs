//! The profitability cost model (paper §IV-A).
//!
//! ```text
//! Δ({f1,f2}, f1,2) = (c(f1) + c(f2)) − (c(f1,2) + ε)
//! ε = δ(f1, f1,2) + δ(f2, f1,2)
//! ```
//!
//! where `c` is the target-specific code-size cost (our TTI stand-in,
//! [`fmsa_target::CostModel`]) and `δ` covers "(1) the cases where we need
//! to keep the original functions with a call to the merged function; and
//! (2) for the cases where we update the call graph, there might be an
//! extra cost with a call to the merged function due to the increased
//! number of arguments."

use crate::callsites::{outgoing_calls, CallSiteIndex};
use crate::linearize::Entry;
use crate::merge::MergeInfo;
use crate::thunks::{can_delete, count_call_sites};
use fmsa_align::{Alignment, Step};
use fmsa_ir::{FuncId, Module, Type};
use fmsa_target::CostModel;

/// Detailed outcome of the Δ computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ProfitReport {
    /// `c(f1)` in bytes.
    pub size_f1: u64,
    /// `c(f2)` in bytes.
    pub size_f2: u64,
    /// `c(f1,2)` in bytes.
    pub size_merged: u64,
    /// The ε extra-cost term in bytes.
    pub epsilon: u64,
    /// The Δ profit; positive means merging shrinks the program.
    pub delta: i64,
}

impl ProfitReport {
    /// "We consider that the merge operation is profitable if Δ > 0."
    pub fn is_profitable(&self) -> bool {
        self.delta > 0
    }
}

/// Evaluates Δ for a completed (but not yet committed) merge.
///
/// Like the paper, `c(f)` sums per-instruction TTI code-size costs — the
/// fixed prologue/epilogue overhead of the symbol is *not* credited, which
/// keeps merges of dissimilar functions (whose merged body exceeds the sum
/// of the originals) unprofitable.
pub fn evaluate(module: &Module, cm: &CostModel, info: &MergeInfo) -> ProfitReport {
    evaluate_counted(module, cm, info, &|f| count_call_sites(module, f))
}

/// [`evaluate`] with call sites answered by a [`CallSiteIndex`] instead of
/// a whole-module scan — `O(f1 + f2 + merged)` instead of `O(module)`.
///
/// `sites` must reflect the *committed* module (it does not know the
/// still-uncommitted merged function); the merged function's own direct
/// calls are counted here from its body, so the result equals what
/// [`evaluate`] would compute over the same module state.
pub fn evaluate_indexed(
    module: &Module,
    cm: &CostModel,
    info: &MergeInfo,
    sites: &CallSiteIndex,
) -> ProfitReport {
    let merged_out = outgoing_calls(module.func(info.merged));
    evaluate_counted(module, cm, info, &|f| {
        sites.count(f) + merged_out.get(&f).copied().unwrap_or(0)
    })
}

fn evaluate_counted(
    module: &Module,
    cm: &CostModel,
    info: &MergeInfo,
    sites_of: &dyn Fn(FuncId) -> usize,
) -> ProfitReport {
    let size_f1 = cm.body_size(module, info.f1);
    let size_f2 = cm.body_size(module, info.f2);
    let size_merged = cm.body_size(module, info.merged);
    let epsilon = delta_cost(module, cm, info, true, sites_of)
        + delta_cost(module, cm, info, false, sites_of);
    let delta = (size_f1 + size_f2) as i64 - (size_merged + epsilon) as i64;
    ProfitReport { size_f1, size_f2, size_merged, epsilon, delta }
}

/// The δ(f_i, f1,2) term for one side.
fn delta_cost(
    module: &Module,
    cm: &CostModel,
    info: &MergeInfo,
    first: bool,
    sites_of: &dyn Fn(FuncId) -> usize,
) -> u64 {
    let func: FuncId = if first { info.f1 } else { info.f2 };
    let ret_orig = if first { info.ret.ty1 } else { info.ret.ty2 };
    delta_cost_side(
        module,
        cm,
        func,
        info.params.merged_tys.len() as u64,
        ret_orig,
        info.ret.base,
        sites_of,
    )
}

/// [`delta_cost`] over explicit pieces instead of a [`MergeInfo`] — used
/// by [`crate::merge::speculate::evaluate_speculative`], whose merged
/// body still lives in a scratch module and so has no main-module
/// `MergeInfo` yet. All ids must be main-module ids.
pub(crate) fn delta_cost_side(
    module: &Module,
    cm: &CostModel,
    func: FuncId,
    merged_params: u64,
    ret_orig: fmsa_ir::TyId,
    ret_base: fmsa_ir::TyId,
    sites_of: &dyn Fn(FuncId) -> usize,
) -> u64 {
    let orig_params = module.func(func).params().len() as u64;
    let extra_args = merged_params.saturating_sub(orig_params);
    let ret_cast = if ret_orig == ret_base || matches!(module.types.get(ret_orig), Type::Void) {
        0
    } else {
        // A short bitcast/trunc chain at each use of the result.
        4
    };
    if can_delete(module, func) {
        // Call-graph update: every call site passes extra arguments and may
        // convert the result.
        let sites = sites_of(func) as u64;
        sites * (extra_args * cm.per_arg_call_cost() + ret_cast)
    } else {
        // Thunk body left in the original symbol: a call forwarding every
        // merged argument plus the return.
        cm.call_cost() + merged_params * cm.per_arg_call_cost() + ret_cast + 1
    }
}

/// An *optimistic* upper bound on the Δ a merge of `f1` and `f2` under
/// `alignment` could achieve, computable before code generation.
///
/// The bound underestimates `c(f1,2)`: every match column emits at least
/// one shared clone (costed at the cheaper side) and every gap/mismatch
/// column clones its instructions into a divergent region, while all of
/// codegen's additions — guard branches, operand selects, demotion
/// slots — and the entire ε term are optimistically taken as zero. So if
/// this bound is ≤ 0, the real Δ of [`evaluate`] is guaranteed ≤ 0 and
/// code generation can be skipped without changing any merge decision;
/// the pipeline uses it as a sound pre-codegen gate.
pub fn optimistic_delta(
    module: &Module,
    cm: &CostModel,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
    alignment: &Alignment,
) -> i64 {
    let fa = module.func(f1);
    let fb = module.func(f2);
    let cost1 = |e: &Entry| match e {
        Entry::Inst(i) => cm.inst_cost(fa.inst(*i)),
        Entry::Label(_) => 0,
    };
    let cost2 = |e: &Entry| match e {
        Entry::Inst(i) => cm.inst_cost(fb.inst(*i)),
        Entry::Label(_) => 0,
    };
    let mut lower_bound_merged = 0u64;
    for step in &alignment.steps {
        match *step {
            Step::Both { i, j, matched: true } => {
                lower_bound_merged += cost1(&seq1[i]).min(cost2(&seq2[j]));
            }
            Step::Both { i, j, matched: false } => {
                lower_bound_merged += cost1(&seq1[i]) + cost2(&seq2[j]);
            }
            Step::Left(i) => lower_bound_merged += cost1(&seq1[i]),
            Step::Right(j) => lower_bound_merged += cost2(&seq2[j]),
        }
    }
    let size_f1 = cm.body_size(module, f1);
    let size_f2 = cm.body_size(module, f2);
    (size_f1 + size_f2) as i64 - lower_bound_merged as i64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::merge::{merge_pair, MergeConfig};
    use fmsa_ir::{FuncBuilder, Linkage, Value};
    use fmsa_target::TargetArch;

    /// A pair of near-identical medium functions; merging should win.
    fn similar_pair(m: &mut fmsa_ir::Module) -> (FuncId, FuncId) {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let mut out = Vec::new();
        for (name, c) in [("fa", 3), ("fb", 4)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..10 {
                v = b.add(v, b.const_i32(k));
                v = b.mul(v, Value::Param(1));
            }
            v = b.add(v, b.const_i32(c)); // the single difference
            b.ret(Some(v));
            out.push(f);
        }
        (out[0], out[1])
    }

    #[test]
    fn near_identical_pair_is_profitable() {
        let mut m = fmsa_ir::Module::new("m");
        let (fa, fb) = similar_pair(&mut m);
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merges");
        let cm = CostModel::new(TargetArch::X86_64);
        let report = evaluate(&m, &cm, &info);
        assert!(report.is_profitable(), "{report:?}");
        assert!(report.size_merged < report.size_f1 + report.size_f2);
    }

    #[test]
    fn dissimilar_pair_is_unprofitable() {
        let mut m = fmsa_ir::Module::new("m");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fn1 = m.types.func(i32t, vec![i32t]);
        let fn2 = m.types.func(f64t, vec![f64t]);
        let fa = m.create_function("fa", fn1);
        {
            let mut b = FuncBuilder::new(&mut m, fa);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..8 {
                v = b.xor(v, b.const_i32(k));
            }
            b.ret(Some(v));
        }
        let fb = m.create_function("fb", fn2);
        {
            let mut b = FuncBuilder::new(&mut m, fb);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for _ in 0..8 {
                v = b.fdiv(v, b.const_f64(1.5));
            }
            b.ret(Some(v));
        }
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merge builds");
        let cm = CostModel::new(TargetArch::X86_64);
        let report = evaluate(&m, &cm, &info);
        assert!(!report.is_profitable(), "{report:?}");
    }

    #[test]
    fn evaluate_indexed_matches_direct_scan() {
        let mut m = fmsa_ir::Module::new("m");
        let (fa, fb) = similar_pair(&mut m);
        // A caller of fa so the call-site count is non-trivial.
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let caller = m.create_function("caller", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, caller);
            let e = b.block("entry");
            b.switch_to(e);
            let r = b.call(fa, vec![Value::Param(0), Value::Param(0)]);
            b.ret(Some(r));
        }
        let idx = crate::callsites::CallSiteIndex::build(&m);
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merges");
        let cm = CostModel::new(TargetArch::X86_64);
        // The index was built before the (uncommitted) merged function was
        // added; evaluate_indexed must still agree with the direct scan.
        assert_eq!(evaluate_indexed(&m, &cm, &info, &idx), evaluate(&m, &cm, &info));
    }

    #[test]
    fn optimistic_delta_bounds_real_delta() {
        use crate::linearize::linearize;
        use crate::merge::align_with;
        let mut m = fmsa_ir::Module::new("m");
        let (fa, fb) = similar_pair(&mut m);
        let cfg = MergeConfig::default();
        let cm = CostModel::new(TargetArch::X86_64);
        let seq1 = linearize(m.func(fa));
        let seq2 = linearize(m.func(fb));
        let al = align_with(&m, fa, fb, &seq1, &seq2, &cfg.scoring, cfg.algorithm);
        let optimistic = optimistic_delta(&m, &cm, fa, fb, &seq1, &seq2, &al);
        let info = merge_pair(&mut m, fa, fb, &cfg).expect("merges");
        let report = evaluate(&m, &cm, &info);
        assert!(
            optimistic >= report.delta,
            "optimistic {optimistic} must bound real {}",
            report.delta
        );
        // A near-identical pair must look promising to the gate.
        assert!(optimistic > 0);
    }

    #[test]
    fn external_linkage_pays_thunk_costs() {
        let mut m = fmsa_ir::Module::new("m");
        let (fa, fb) = similar_pair(&mut m);
        let info = merge_pair(&mut m, fa, fb, &MergeConfig::default()).expect("merges");
        let cm = CostModel::new(TargetArch::X86_64);
        let deletable = evaluate(&m, &cm, &info);
        m.func_mut(fa).linkage = Linkage::External;
        m.func_mut(fb).linkage = Linkage::External;
        let thunked = evaluate(&m, &cm, &info);
        assert!(
            thunked.epsilon > deletable.epsilon,
            "thunks cost more than call-graph updates with no callers"
        );
        assert!(thunked.delta < deletable.delta);
    }
}
