//! Identical function merging — the LLVM `MergeFunctions` baseline.
//!
//! "This optimization is only flexible enough to accommodate simple type
//! mismatches provided they can be bitcast in a lossless way. Its
//! simplicity allows for an efficient exploration approach based on
//! computing the hash of the functions and then using a tree structure to
//! group equivalent functions based on their hash values." (§VI-A)
//!
//! This implementation hashes a structural summary of every defined
//! function, groups by hash, confirms equality pairwise within each
//! bucket, and folds duplicates onto a representative (deleting them or
//! leaving thunks, like the FMSA commit machinery).

use crate::linearize::{linearize, Entry};
use crate::thunks::{can_delete, make_thunk, rewrite_call_sites, CallRewrite};
use fmsa_ir::{ExtraData, FuncId, Module, Value};
use fmsa_target::{CostModel, TargetArch};
use std::collections::hash_map::DefaultHasher;
use std::collections::HashMap;
use std::hash::{Hash, Hasher};

/// Statistics of one identical-merging run.
#[derive(Debug, Clone, Default)]
pub struct IdenticalStats {
    /// Number of functions folded onto a representative (the paper's
    /// "merge operations" count for Identical).
    pub merges: usize,
    /// Module size before, in cost-model bytes.
    pub size_before: u64,
    /// Module size after.
    pub size_after: u64,
}

impl IdenticalStats {
    /// Code-size reduction achieved, in percent.
    pub fn reduction_percent(&self) -> f64 {
        fmsa_target::reduction_percent(self.size_before, self.size_after)
    }
}

/// Runs identical-function merging over `module` for `arch`.
pub fn run_identical(module: &mut Module, arch: TargetArch) -> IdenticalStats {
    let cm = CostModel::new(arch);
    let mut stats =
        IdenticalStats { size_before: cm.module_size(module), ..IdenticalStats::default() };
    // Bucket by structural hash.
    let mut buckets: HashMap<u64, Vec<FuncId>> = HashMap::new();
    for f in module.func_ids() {
        if module.func(f).is_declaration() {
            continue;
        }
        buckets.entry(structural_hash(module, f)).or_default().push(f);
    }
    let mut hashes: Vec<u64> = buckets.keys().copied().collect();
    hashes.sort_unstable();
    for h in hashes {
        let group = &buckets[&h];
        if group.len() < 2 {
            continue;
        }
        // Fold equal members onto the first (hash collisions are verified
        // away by the exact comparison).
        let mut representatives: Vec<FuncId> = Vec::new();
        for &f in group {
            match representatives.iter().find(|&&r| structurally_equal(module, r, f)) {
                Some(&rep) => {
                    fold(module, f, rep);
                    stats.merges += 1;
                }
                None => representatives.push(f),
            }
        }
    }
    stats.size_after = cm.module_size(module);
    stats
}

/// Folds duplicate `dup` onto `rep`: rewrites call sites, then deletes the
/// duplicate or leaves a thunk.
fn fold(module: &mut Module, dup: FuncId, rep: FuncId) {
    let nparams = module.func(dup).params().len();
    let ret = module.func(dup).ret_ty(&module.types);
    let rw = CallRewrite {
        target: rep,
        merged_param_tys: module.func(rep).params().iter().map(|p| p.ty).collect(),
        map: (0..nparams).collect(),
        func_id: None,
        ret_base: ret,
        ret_orig: ret,
    };
    if can_delete(module, dup) {
        rewrite_call_sites(module, dup, &rw).expect("identity rewrite cannot fail");
        module.remove_function(dup);
    } else {
        make_thunk(module, dup, &rw).expect("identity thunk cannot fail");
    }
}

/// A structural hash that is invariant to names and arena numbering but
/// sensitive to everything the equality check compares.
pub fn structural_hash(module: &Module, f: FuncId) -> u64 {
    let func = module.func(f);
    let mut h = DefaultHasher::new();
    func.fn_ty().hash(&mut h);
    let seq = linearize(func);
    let index = position_index(&seq);
    for e in &seq {
        match e {
            Entry::Label(_) => 0u8.hash(&mut h),
            Entry::Inst(i) => {
                let inst = func.inst(*i);
                1u8.hash(&mut h);
                inst.opcode.hash(&mut h);
                inst.ty.hash(&mut h);
                hash_extra(&inst.extra, &mut h);
                for op in &inst.operands {
                    hash_operand(*op, &index, &mut h);
                }
            }
        }
    }
    h.finish()
}

fn position_index(seq: &[Entry]) -> HashMap<Entry, usize> {
    seq.iter().enumerate().map(|(k, &e)| (e, k)).collect()
}

fn hash_extra(extra: &ExtraData, h: &mut DefaultHasher) {
    match extra {
        ExtraData::None => 0u8.hash(h),
        ExtraData::ICmp(p) => {
            1u8.hash(h);
            p.hash(h);
        }
        ExtraData::FCmp(p) => {
            2u8.hash(h);
            p.hash(h);
        }
        ExtraData::Alloca { allocated } => {
            3u8.hash(h);
            allocated.hash(h);
        }
        ExtraData::Gep { source_elem } => {
            4u8.hash(h);
            source_elem.hash(h);
        }
        ExtraData::Phi { incoming } => {
            5u8.hash(h);
            incoming.len().hash(h);
        }
        ExtraData::LandingPad { clauses, cleanup } => {
            6u8.hash(h);
            cleanup.hash(h);
            clauses.hash(h);
        }
        ExtraData::AggIndices(ix) => {
            7u8.hash(h);
            ix.hash(h);
        }
    }
}

fn hash_operand(op: Value, index: &HashMap<Entry, usize>, h: &mut DefaultHasher) {
    match op {
        Value::Inst(i) => {
            0u8.hash(h);
            index.get(&Entry::Inst(i)).hash(h);
        }
        Value::Block(b) => {
            1u8.hash(h);
            index.get(&Entry::Label(b)).hash(h);
        }
        Value::Param(p) => {
            2u8.hash(h);
            p.hash(h);
        }
        Value::Func(f) => {
            3u8.hash(h);
            f.hash(h);
        }
        other => {
            4u8.hash(h);
            other.hash(h);
        }
    }
}

/// Exact structural equality: same signature and the same linearized
/// sequence with congruent operands (positions instead of arena ids).
pub fn structurally_equal(module: &Module, a: FuncId, b: FuncId) -> bool {
    let fa = module.func(a);
    let fb = module.func(b);
    if fa.fn_ty() != fb.fn_ty() {
        return false;
    }
    let sa = linearize(fa);
    let sb = linearize(fb);
    if sa.len() != sb.len() {
        return false;
    }
    let ia = position_index(&sa);
    let ib = position_index(&sb);
    for (ea, eb) in sa.iter().zip(&sb) {
        match (ea, eb) {
            (Entry::Label(_), Entry::Label(_)) => {}
            (Entry::Inst(x), Entry::Inst(y)) => {
                let ix = fa.inst(*x);
                let iy = fb.inst(*y);
                if ix.opcode != iy.opcode
                    || ix.ty != iy.ty
                    || ix.operands.len() != iy.operands.len()
                {
                    return false;
                }
                // Extras must match modulo φ incoming-block renumbering.
                match (&ix.extra, &iy.extra) {
                    (ExtraData::Phi { incoming: pa }, ExtraData::Phi { incoming: pb }) => {
                        if pa.len() != pb.len() {
                            return false;
                        }
                        for (&ba, &bb) in pa.iter().zip(pb) {
                            if ia.get(&Entry::Label(ba)) != ib.get(&Entry::Label(bb)) {
                                return false;
                            }
                        }
                    }
                    (xa, xb) => {
                        if xa != xb {
                            return false;
                        }
                    }
                }
                for (&oa, &ob) in ix.operands.iter().zip(&iy.operands) {
                    let congruent = match (oa, ob) {
                        (Value::Inst(p), Value::Inst(q)) => {
                            ia.get(&Entry::Inst(p)) == ib.get(&Entry::Inst(q))
                        }
                        (Value::Block(p), Value::Block(q)) => {
                            ia.get(&Entry::Label(p)) == ib.get(&Entry::Label(q))
                        }
                        (x, y) => x == y,
                    };
                    if !congruent {
                        return false;
                    }
                }
            }
            _ => return false,
        }
    }
    true
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Opcode};

    fn add_clone(m: &mut Module, name: &str, constant: i32) -> FuncId {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function(name, fn_ty);
        let mut b = FuncBuilder::new(m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let v = b.add(Value::Param(0), b.const_i32(constant));
        let w = b.mul(v, Value::Param(0));
        b.ret(Some(w));
        f
    }

    #[test]
    fn exact_clones_fold() {
        let mut m = Module::new("m");
        let a = add_clone(&mut m, "a", 1);
        let b = add_clone(&mut m, "b", 1);
        let c = add_clone(&mut m, "c", 1);
        assert!(structurally_equal(&m, a, b));
        assert_eq!(structural_hash(&m, a), structural_hash(&m, b));
        let stats = run_identical(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 2);
        assert!(stats.size_after < stats.size_before);
        // Only one of the three bodies survives.
        let alive = [a, b, c].iter().filter(|&&f| m.is_live(f)).count();
        assert_eq!(alive, 1);
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn different_constants_do_not_fold() {
        let mut m = Module::new("m");
        let a = add_clone(&mut m, "a", 1);
        let b = add_clone(&mut m, "b", 2);
        assert!(!structurally_equal(&m, a, b));
        let stats = run_identical(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 0);
        assert_eq!(stats.size_before, stats.size_after);
    }

    #[test]
    fn call_sites_are_redirected() {
        let mut m = Module::new("m");
        let a = add_clone(&mut m, "a", 1);
        let b = add_clone(&mut m, "b", 1);
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        let caller = m.create_function("caller", fn_ty);
        {
            let mut bb = FuncBuilder::new(&mut m, caller);
            let e = bb.block("entry");
            bb.switch_to(e);
            let x = bb.call(b, vec![bb.const_i32(5)]);
            bb.ret(Some(x));
        }
        run_identical(&mut m, TargetArch::X86_64);
        // b was folded onto a; caller must now call a.
        let cf = m.func(caller);
        let call =
            cf.inst_ids().into_iter().find(|&i| cf.inst(i).opcode == Opcode::Call).expect("call");
        assert_eq!(cf.inst(call).operands[0], Value::Func(a));
        assert!(!m.is_live(b));
    }

    #[test]
    fn external_duplicates_become_thunks() {
        let mut m = Module::new("m");
        let _a = add_clone(&mut m, "a", 1);
        let b = add_clone(&mut m, "b", 1);
        m.func_mut(b).linkage = fmsa_ir::Linkage::External;
        let stats = run_identical(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 1);
        assert!(m.is_live(b), "external function kept as thunk");
        let bf = m.func(b);
        assert_eq!(bf.inst_count(), 2, "thunk = call + ret");
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }
}
