//! The state-of-the-art baseline ("SOA"): structural function merging of
//! von Koch et al., *Exploiting function similarity for code size
//! reduction*, LCTES 2014.
//!
//! "Two functions are structurally similar if both their function types are
//! equivalent and their CFGs isomorphic. ... their technique also requires
//! that corresponding basic blocks have exactly the same number of
//! instructions and that corresponding instructions must have equivalent
//! resulting types." (§VI-A)
//!
//! Implementation strategy: candidates are bucketed by a shape key
//! (signature + CFG skeleton + per-block instruction counts). For a
//! candidate pair the lock-step positional correspondence *is* the
//! alignment — matched where instructions are equivalent, mismatched
//! otherwise — so code generation reuses the FMSA merger. This reproduces
//! von Koch's behaviour for pairs (switch-on-identifier over differing
//! instructions becomes the equivalent two-way diamond) while inheriting
//! the verified codegen and profitability machinery. The paper's
//! observation that SOA-merged functions cannot be merged again (their
//! signatures change) emerges naturally: the merged function gains an
//! `i1` parameter and leaves the original shape class.

use crate::linearize::{linearize, Entry};
use crate::merge::{merge_pair_aligned, MergeConfig};
use crate::profitability::evaluate;
use crate::thunks::commit_merge;
use fmsa_align::{Alignment, Step};
use fmsa_ir::{cfg, FuncId, Module, Opcode};
use fmsa_target::{CostModel, TargetArch};
use std::collections::HashMap;

/// Statistics of one SOA run.
#[derive(Debug, Clone, Default)]
pub struct SoaStats {
    /// Committed pairwise merges.
    pub merges: usize,
    /// Merge attempts (including discarded unprofitable ones).
    pub attempted: usize,
    /// Module size before, in cost-model bytes.
    pub size_before: u64,
    /// Module size after.
    pub size_after: u64,
}

impl SoaStats {
    /// Code-size reduction achieved, in percent.
    pub fn reduction_percent(&self) -> f64 {
        fmsa_target::reduction_percent(self.size_before, self.size_after)
    }
}

/// Shape key: functions can only be structurally similar if these agree.
fn shape_key(module: &Module, f: FuncId) -> Option<Vec<u64>> {
    let func = module.func(f);
    if func.is_declaration() {
        return None;
    }
    let rpo = cfg::reverse_post_order(func);
    let index: HashMap<_, _> = rpo.iter().enumerate().map(|(k, &b)| (b, k as u64)).collect();
    let mut key = vec![func.fn_ty().index() as u64, rpo.len() as u64];
    for &b in &rpo {
        let block = func.block(b);
        key.push(block.insts.len() as u64);
        let term = func.terminator(b)?;
        key.push(func.inst(term).opcode as u64);
        for s in func.successors(b) {
            key.push(*index.get(&s)?);
        }
        key.push(u64::MAX); // separator
    }
    Some(key)
}

/// Builds the lock-step alignment of two shape-identical functions, or
/// `None` if the pair violates the structural preconditions after all
/// (label kinds must correspond; φ-nodes must match positionally).
fn lockstep_alignment(
    module: &Module,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
) -> Option<Alignment> {
    if seq1.len() != seq2.len() {
        return None;
    }
    let ctx = crate::equivalence::EquivCtx::new(module, module.func(f1), module.func(f2));
    let mut steps = Vec::with_capacity(seq1.len());
    for (k, (e1, e2)) in seq1.iter().zip(seq2).enumerate() {
        match (e1, e2) {
            (Entry::Label(_), Entry::Label(_)) => {
                if !ctx.entries_equivalent(e1, e2) {
                    return None; // e.g. landing pad vs normal block
                }
                steps.push(Step::Both { i: k, j: k, matched: true });
            }
            (Entry::Inst(i1), Entry::Inst(i2)) => {
                let matched = ctx.entries_equivalent(e1, e2);
                if !matched {
                    // Differing instructions are allowed, but von Koch
                    // requires "corresponding instructions must have
                    // equivalent resulting types", and a φ or terminator
                    // mismatch would break the isomorphism.
                    let in1 = module.func(f1).inst(*i1);
                    let in2 = module.func(f2).inst(*i2);
                    if in1.opcode == Opcode::Phi || in2.opcode == Opcode::Phi {
                        return None;
                    }
                    if in1.opcode.is_terminator() != in2.opcode.is_terminator() {
                        return None;
                    }
                    if !module.types.can_lossless_bitcast(in1.ty, in2.ty) {
                        return None;
                    }
                }
                steps.push(Step::Both { i: k, j: k, matched });
            }
            _ => return None,
        }
    }
    Some(Alignment { steps, score: 0 })
}

/// Runs the SOA baseline over `module` for `arch`.
pub fn run_soa(module: &mut Module, arch: TargetArch) -> SoaStats {
    let cm = CostModel::new(arch);
    let mut stats = SoaStats { size_before: cm.module_size(module), ..SoaStats::default() };
    let config = MergeConfig { name_hint: None, ..MergeConfig::default() };
    loop {
        // (Re)bucket by shape; merged functions change shape, so the loop
        // reaches a fixed point quickly.
        let mut buckets: HashMap<Vec<u64>, Vec<FuncId>> = HashMap::new();
        for f in module.func_ids() {
            if let Some(key) = shape_key(module, f) {
                buckets.entry(key).or_default().push(f);
            }
        }
        let mut keys: Vec<&Vec<u64>> = buckets.keys().collect();
        keys.sort();
        let mut committed = false;
        'outer: for key in keys {
            let group = &buckets[key];
            if group.len() < 2 {
                continue;
            }
            for (ai, &a) in group.iter().enumerate() {
                for &b in &group[ai + 1..] {
                    if !module.is_live(a) || !module.is_live(b) {
                        continue;
                    }
                    stats.attempted += 1;
                    let seq1 = linearize(module.func(a));
                    let seq2 = linearize(module.func(b));
                    let Some(al) = lockstep_alignment(module, a, b, &seq1, &seq2) else {
                        continue;
                    };
                    let Ok(info) = merge_pair_aligned(module, a, b, seq1, seq2, al, &config) else {
                        continue;
                    };
                    let report = evaluate(module, &cm, &info);
                    if !report.is_profitable() {
                        module.remove_function(info.merged);
                        continue;
                    }
                    if commit_merge(module, &info).is_err() {
                        module.remove_function(info.merged);
                        continue;
                    }
                    stats.merges += 1;
                    committed = true;
                    continue 'outer;
                }
            }
        }
        if !committed {
            break;
        }
    }
    stats.size_after = cm.module_size(module);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, IntPredicate, Value};

    /// Same CFG and signature, one differing opcode in the body — the
    /// classic SOA-mergeable pair.
    fn soa_pair(m: &mut Module) -> (FuncId, FuncId) {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let mut out = Vec::new();
        for (name, add) in [("sa", true), ("sb", false)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let e = b.block("entry");
            let t = b.block("t");
            let el = b.block("e");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for k in 0..20 {
                v = b.mul(v, Value::Param(1));
                v = b.xor(v, b.const_i32(k));
            }
            let d = if add { b.add(v, Value::Param(1)) } else { b.sub(v, Value::Param(1)) };
            let c = b.icmp(IntPredicate::Sgt, d, b.const_i32(0));
            b.condbr(c, t, el);
            b.switch_to(t);
            b.ret(Some(d));
            b.switch_to(el);
            let n = b.sub(b.const_i32(0), d);
            b.ret(Some(n));
            out.push(f);
        }
        (out[0], out[1])
    }

    #[test]
    fn merges_same_cfg_pair() {
        let mut m = Module::new("m");
        soa_pair(&mut m);
        let stats = run_soa(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 1, "{stats:?}");
        assert!(stats.size_after < stats.size_before);
        assert!(fmsa_ir::verify_module(&m).is_empty(), "{:?}", fmsa_ir::verify_module(&m));
    }

    #[test]
    fn rejects_different_cfgs() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        // One-block function.
        let a = m.create_function("a", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, a);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.add(Value::Param(0), b.const_i32(1));
            b.ret(Some(v));
        }
        // Two-block function computing the same thing.
        let c = m.create_function("c", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, c);
            let e = b.block("entry");
            let x = b.block("x");
            b.switch_to(e);
            b.br(x);
            b.switch_to(x);
            let v = b.add(Value::Param(0), b.const_i32(1));
            b.ret(Some(v));
        }
        let stats = run_soa(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 0, "different CFG shapes must not merge");
    }

    #[test]
    fn rejects_different_signatures() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let i64t = m.types.i64();
        for (name, ty) in [("a", i32t), ("c", i64t)] {
            let fn_ty = m.types.func(ty, vec![ty]);
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for _ in 0..8 {
                v = b.add(v, v);
            }
            b.ret(Some(v));
        }
        let stats = run_soa(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 0, "different signatures must not merge (SOA limitation)");
    }

    #[test]
    fn small_unprofitable_pairs_skipped() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        for (name, c) in [("t1", 1), ("t2", 2)] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.add(Value::Param(0), b.const_i32(c));
            b.ret(Some(v));
        }
        let stats = run_soa(&mut m, TargetArch::X86_64);
        assert_eq!(stats.merges, 0, "tiny pair with a diff is not profitable: {stats:?}");
    }
}
