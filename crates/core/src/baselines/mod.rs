//! The two baselines the paper evaluates FMSA against (§V-A):
//!
//! * [`identical`] — LLVM's `MergeFunctions`-style identical-function
//!   merging ("Identical" in the figures);
//! * [`structural`] — the state-of-the-art of von Koch et al., LCTES'14:
//!   merging functions with identical signatures and isomorphic CFGs
//!   ("SOA" in the figures).

pub mod identical;
pub mod structural;

pub use identical::{run_identical, IdenticalStats};
pub use structural::{run_soa, SoaStats};
