//! The equivalence relation over linearized entries (paper §III-D).
//!
//! Two instructions are equivalent if (1) their opcodes are equivalent,
//! (2) their result types are equivalent, and (3) they have pairwise
//! operands with equivalent types, where types are equivalent when they can
//! be bitcast losslessly. Labels of normal blocks are always equivalent to
//! each other; landing-block labels require identical landing-pad
//! instructions.
//!
//! Deviations from the paper, both conservative (they only *reject* merges
//! the paper might accept):
//!
//! * matched calls/invokes must target the *same* callee — selecting
//!   between two callees at runtime would need indirect calls, which the
//!   interpreter substrate does not model;
//! * `getelementptr` pairs must agree on the source element type and on
//!   every struct-field index (field offsets are compile-time constants
//!   and cannot be selected at runtime).

use crate::linearize::Entry;
use fmsa_ir::{ExtraData, Function, Inst, Module, Opcode, Type, Value};

/// Equivalence context: the module plus the two functions being aligned.
#[derive(Debug, Clone, Copy)]
pub struct EquivCtx<'a> {
    /// The module owning both functions.
    pub module: &'a Module,
    /// First function.
    pub f1: &'a Function,
    /// Second function.
    pub f2: &'a Function,
}

impl<'a> EquivCtx<'a> {
    /// Builds a context for aligning `f1` against `f2`.
    pub fn new(module: &'a Module, f1: &'a Function, f2: &'a Function) -> EquivCtx<'a> {
        EquivCtx { module, f1, f2 }
    }

    /// The §III-D equivalence over linearized entries.
    pub fn entries_equivalent(&self, e1: &Entry, e2: &Entry) -> bool {
        match (e1, e2) {
            (Entry::Label(b1), Entry::Label(b2)) => self.labels_equivalent(*b1, *b2),
            (Entry::Inst(i1), Entry::Inst(i2)) => {
                self.insts_equivalent(self.f1.inst(*i1), self.f2.inst(*i2))
            }
            _ => false,
        }
    }

    /// "Labels of normal basic blocks are ignored during code equivalence
    /// evaluation, but we cannot do the same for landing blocks."
    pub fn labels_equivalent(&self, b1: fmsa_ir::BlockId, b2: fmsa_ir::BlockId) -> bool {
        let l1 = self.f1.is_landing_block(b1);
        let l2 = self.f2.is_landing_block(b2);
        match (l1, l2) {
            (false, false) => true,
            (true, true) => {
                let p1 = self.f1.inst(self.f1.block(b1).insts[0]);
                let p2 = self.f2.inst(self.f2.block(b2).insts[0]);
                self.landingpads_identical(p1, p2)
            }
            _ => false,
        }
    }

    /// "Landing-pad instructions are equivalent if they have exactly the
    /// same type and also encode identical lists of exception and cleanup
    /// handlers."
    fn landingpads_identical(&self, p1: &Inst, p2: &Inst) -> bool {
        p1.opcode == Opcode::LandingPad
            && p2.opcode == Opcode::LandingPad
            && p1.ty == p2.ty
            && p1.extra == p2.extra
    }

    /// Instruction equivalence (§III-D).
    pub fn insts_equivalent(&self, i1: &Inst, i2: &Inst) -> bool {
        let ts = &self.module.types;
        // (1) Opcode equivalence. We use exact opcode equality; the IR has
        // no instruction flags, so there are no distinct-but-equivalent
        // opcodes to unify.
        if i1.opcode != i2.opcode {
            return false;
        }
        // φ-nodes are assumed demoted before merging (§III); never merge
        // any that remain.
        if i1.opcode == Opcode::Phi {
            return false;
        }
        // (2) Equivalent result types.
        if !ts.can_lossless_bitcast(i1.ty, i2.ty) {
            return false;
        }
        // (3) Pairwise operands with equivalent types.
        if i1.operands.len() != i2.operands.len() {
            return false;
        }
        for (&o1, &o2) in i1.operands.iter().zip(&i2.operands) {
            let label1 = matches!(o1, Value::Block(_));
            let label2 = matches!(o2, Value::Block(_));
            if label1 != label2 {
                return false;
            }
            if label1 {
                continue; // label operands are resolved by codegen
            }
            let (t1, t2) = (self.op_ty1(o1), self.op_ty2(o2));
            match (t1, t2) {
                (Some(a), Some(b)) if ts.can_lossless_bitcast(a, b) => {}
                _ => return false,
            }
        }
        // Opcode-specific payloads.
        match (&i1.extra, &i2.extra) {
            (ExtraData::None, ExtraData::None) => {}
            (ExtraData::ICmp(a), ExtraData::ICmp(b)) if a == b => {}
            (ExtraData::FCmp(a), ExtraData::FCmp(b)) if a == b => {}
            (ExtraData::Alloca { allocated: a }, ExtraData::Alloca { allocated: b }) => {
                // Merged allocas must reserve the same amount of memory and
                // alignment; identical size suffices since loads/stores go
                // through bitcast-equivalent pointers.
                if ts.byte_size(*a) != ts.byte_size(*b) || ts.align_of(*a) != ts.align_of(*b) {
                    return false;
                }
            }
            (ExtraData::Gep { source_elem: a }, ExtraData::Gep { source_elem: b }) => {
                if a != b || !self.gep_struct_indices_identical(i1, i2, *a) {
                    return false;
                }
            }
            (ExtraData::LandingPad { .. }, ExtraData::LandingPad { .. }) => {
                if !self.landingpads_identical(i1, i2) {
                    return false;
                }
            }
            (ExtraData::AggIndices(a), ExtraData::AggIndices(b)) => {
                if a != b || i1.ty != i2.ty {
                    return false;
                }
            }
            _ => return false,
        }
        // Switch case values are immediate constants in the encoding; they
        // cannot be selected at runtime, so matched switches must agree on
        // every case constant (targets may differ — codegen selects labels
        // through divergent control flow).
        if i1.opcode == Opcode::Switch {
            for (k, (&o1, &o2)) in i1.operands.iter().zip(&i2.operands).enumerate() {
                let is_case_const = k >= 2 && k % 2 == 0;
                if is_case_const && o1 != o2 {
                    return false;
                }
            }
        }
        // Calls: "type equivalence means that both instructions have
        // identical function types" — and (see module docs) we further
        // require the same callee to stay within direct calls.
        if matches!(i1.opcode, Opcode::Call | Opcode::Invoke) {
            if i1.operands[0] != i2.operands[0] {
                return false;
            }
            // Invoke: unwind landing blocks must carry identical pads.
            if i1.opcode == Opcode::Invoke {
                let u1 = i1.operands[i1.operands.len() - 1].as_block();
                let u2 = i2.operands[i2.operands.len() - 1].as_block();
                match (u1, u2) {
                    (Some(u1), Some(u2)) => {
                        if !self.labels_equivalent(u1, u2) {
                            return false;
                        }
                    }
                    _ => return false,
                }
            }
        }
        true
    }

    /// Struct-field GEP indices must be identical constants (they select
    /// compile-time offsets); array/pointer indices may differ (codegen
    /// selects them at runtime).
    fn gep_struct_indices_identical(&self, i1: &Inst, i2: &Inst, source: fmsa_ir::TyId) -> bool {
        let ts = &self.module.types;
        let mut cur = source;
        // operands[1] indexes the source element itself (array semantics);
        // subsequent operands walk into the type.
        for (k, (&o1, &o2)) in i1.operands[1..].iter().zip(&i2.operands[1..]).enumerate() {
            if k > 0 {
                match ts.get(cur) {
                    Type::Struct { fields, .. } => {
                        if o1 != o2 {
                            return false;
                        }
                        let Value::ConstInt { bits, .. } = o1 else { return false };
                        match fields.get(bits as usize) {
                            Some(&f) => cur = f,
                            None => return false,
                        }
                        continue;
                    }
                    Type::Array { elem, .. } => {
                        cur = *elem;
                    }
                    _ => return false,
                }
            }
        }
        true
    }

    fn op_ty1(&self, v: Value) -> Option<fmsa_ir::TyId> {
        self.operand_ty(self.f1, v)
    }

    fn op_ty2(&self, v: Value) -> Option<fmsa_ir::TyId> {
        self.operand_ty(self.f2, v)
    }

    fn operand_ty(&self, f: &Function, v: Value) -> Option<fmsa_ir::TyId> {
        match v {
            Value::Func(g) => Some(self.module.func(g).fn_ty()),
            Value::Block(_) => None,
            _ => Some(f.value_ty(v, &self.module.types)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, IntPredicate, LandingPadClause, Module, Value};

    /// Builds two functions with a few instructions each and returns the
    /// module for ad-hoc equivalence probing.
    fn two_fns(
        build: impl Fn(&mut FuncBuilder<'_>, bool),
    ) -> (Module, fmsa_ir::FuncId, fmsa_ir::FuncId) {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fn_ty = m.types.func(i32t, vec![i32t, f64t]);
        let f1 = m.create_function("f1", fn_ty);
        let f2 = m.create_function("f2", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, f1);
            let e = b.block("entry");
            b.switch_to(e);
            build(&mut b, true);
        }
        {
            let mut b = FuncBuilder::new(&mut m, f2);
            let e = b.block("entry");
            b.switch_to(e);
            build(&mut b, false);
        }
        (m, f1, f2)
    }

    fn first_insts(m: &Module, f1: fmsa_ir::FuncId, f2: fmsa_ir::FuncId) -> (Entry, Entry) {
        let e1 = Entry::Inst(m.func(f1).inst_ids()[0]);
        let e2 = Entry::Inst(m.func(f2).inst_ids()[0]);
        (e1, e2)
    }

    #[test]
    fn identical_adds_are_equivalent() {
        let (m, f1, f2) = two_fns(|b, _| {
            let v = b.add(Value::Param(0), b.const_i32(1));
            b.ret(Some(v));
        });
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let (e1, e2) = first_insts(&m, f1, f2);
        assert!(ctx.entries_equivalent(&e1, &e2));
    }

    #[test]
    fn different_opcodes_not_equivalent() {
        let (m, f1, f2) = two_fns(|b, first| {
            let v = if first {
                b.add(Value::Param(0), b.const_i32(1))
            } else {
                b.sub(Value::Param(0), b.const_i32(1))
            };
            b.ret(Some(v));
        });
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let (e1, e2) = first_insts(&m, f1, f2);
        assert!(!ctx.entries_equivalent(&e1, &e2));
    }

    #[test]
    fn bitcastable_types_are_equivalent() {
        // i32 add vs i32 add whose operands come from a float bitcast —
        // same types; then check i32 vs f32 stores via alloca of same size.
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f32t = m.types.f32();
        let fn1 = m.types.func(m.types.void(), vec![i32t]);
        let fn2 = m.types.func(m.types.void(), vec![f32t]);
        let f1 = m.create_function("f1", fn1);
        let f2 = m.create_function("f2", fn2);
        {
            let mut b = FuncBuilder::new(&mut m, f1);
            let e = b.block("entry");
            b.switch_to(e);
            let s = b.alloca(i32t);
            b.store(Value::Param(0), s);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, f2);
            let e = b.block("entry");
            b.switch_to(e);
            let s = b.alloca(f32t);
            b.store(Value::Param(0), s);
            b.ret(None);
        }
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let i1 = m.func(f1).inst_ids();
        let i2 = m.func(f2).inst_ids();
        // alloca i32 vs alloca f32: same size/align -> equivalent.
        assert!(ctx.entries_equivalent(&Entry::Inst(i1[0]), &Entry::Inst(i2[0])));
        // store i32 vs store f32: operand types bitcastable -> equivalent.
        assert!(ctx.entries_equivalent(&Entry::Inst(i1[1]), &Entry::Inst(i2[1])));
        // ret void vs ret void.
        assert!(ctx.entries_equivalent(&Entry::Inst(i1[2]), &Entry::Inst(i2[2])));
    }

    #[test]
    fn different_widths_not_equivalent() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let f64t = m.types.f64();
        let fn1 = m.types.func(m.types.void(), vec![i32t]);
        let fn2 = m.types.func(m.types.void(), vec![f64t]);
        let f1 = m.create_function("f1", fn1);
        let f2 = m.create_function("f2", fn2);
        {
            let mut b = FuncBuilder::new(&mut m, f1);
            let e = b.block("entry");
            b.switch_to(e);
            let s = b.alloca(i32t);
            b.store(Value::Param(0), s);
            b.ret(None);
        }
        {
            let mut b = FuncBuilder::new(&mut m, f2);
            let e = b.block("entry");
            b.switch_to(e);
            let s = b.alloca(f64t);
            b.store(Value::Param(0), s);
            b.ret(None);
        }
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let i1 = m.func(f1).inst_ids();
        let i2 = m.func(f2).inst_ids();
        assert!(
            !ctx.entries_equivalent(&Entry::Inst(i1[0]), &Entry::Inst(i2[0])),
            "4-byte vs 8-byte alloca"
        );
        assert!(
            !ctx.entries_equivalent(&Entry::Inst(i1[1]), &Entry::Inst(i2[1])),
            "store of differing widths"
        );
    }

    #[test]
    fn icmp_predicates_must_match() {
        let (m, f1, f2) = two_fns(|b, first| {
            let p = if first { IntPredicate::Slt } else { IntPredicate::Sgt };
            let v = b.icmp(p, Value::Param(0), b.const_i32(0));
            let z = b.zext(v, b.module().types.i32());
            b.ret(Some(z));
        });
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let (e1, e2) = first_insts(&m, f1, f2);
        assert!(!ctx.entries_equivalent(&e1, &e2));
    }

    #[test]
    fn normal_labels_always_equivalent() {
        let (m, f1, f2) = two_fns(|b, _| {
            b.ret(Some(b.const_i32(0)));
        });
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let b1 = m.func(f1).entry();
        let b2 = m.func(f2).entry();
        assert!(ctx.entries_equivalent(&Entry::Label(b1), &Entry::Label(b2)));
    }

    #[test]
    fn landing_labels_require_identical_pads() {
        let mut m = Module::new("m");
        let void = m.types.void();
        let thr_ty = m.types.func(void, vec![]);
        let thr = m.create_function("thrower", thr_ty);
        let fn_ty = m.types.func(void, vec![]);
        let mk = |m: &mut Module, name: &str, clause: &str| {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let entry = b.block("entry");
            let normal = b.block("normal");
            let lpad = b.block("lpad");
            b.switch_to(entry);
            b.invoke(thr, vec![], normal, lpad);
            b.switch_to(normal);
            b.ret(None);
            b.switch_to(lpad);
            let pad = b.landingpad(vec![LandingPadClause::Catch(clause.into())], false);
            b.resume(pad);
            f
        };
        let fa = mk(&mut m, "fa", "TypeA");
        let fb = mk(&mut m, "fb", "TypeA");
        let fc = mk(&mut m, "fc", "TypeB");
        let get_lpad = |f: fmsa_ir::FuncId| {
            m.func(f)
                .block_ids()
                .find(|&b| m.func(f).is_landing_block(b))
                .expect("has landing block")
        };
        let (la, lb, lc) = (get_lpad(fa), get_lpad(fb), get_lpad(fc));
        let ctx_ab = EquivCtx::new(&m, m.func(fa), m.func(fb));
        assert!(ctx_ab.entries_equivalent(&Entry::Label(la), &Entry::Label(lb)));
        let ctx_ac = EquivCtx::new(&m, m.func(fa), m.func(fc));
        assert!(!ctx_ac.entries_equivalent(&Entry::Label(la), &Entry::Label(lc)));
        // Normal label vs landing label: never equivalent.
        let na = m.func(fa).entry();
        assert!(!ctx_ab.entries_equivalent(&Entry::Label(na), &Entry::Label(lb)));
        // Matched invokes with equivalent pads are equivalent.
        let inv_a = Entry::Inst(
            m.func(fa)
                .inst_ids()
                .into_iter()
                .find(|&i| m.func(fa).inst(i).opcode == fmsa_ir::Opcode::Invoke)
                .expect("invoke"),
        );
        let inv_c = Entry::Inst(
            m.func(fc)
                .inst_ids()
                .into_iter()
                .find(|&i| m.func(fc).inst(i).opcode == fmsa_ir::Opcode::Invoke)
                .expect("invoke"),
        );
        assert!(
            !ctx_ac.entries_equivalent(&inv_a, &inv_c),
            "invokes with different landing pads must not match"
        );
    }

    #[test]
    fn calls_require_same_callee() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let g_ty = m.types.func(i32t, vec![i32t]);
        let g1 = m.create_function("g1", g_ty);
        let g2 = m.create_function("g2", g_ty);
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f1 = m.create_function("f1", fn_ty);
        let f2 = m.create_function("f2", fn_ty);
        {
            let mut b = FuncBuilder::new(&mut m, f1);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.call(g1, vec![Value::Param(0)]);
            b.ret(Some(v));
        }
        {
            let mut b = FuncBuilder::new(&mut m, f2);
            let e = b.block("entry");
            b.switch_to(e);
            let v = b.call(g2, vec![Value::Param(0)]);
            b.ret(Some(v));
        }
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let (e1, e2) = first_insts(&m, f1, f2);
        assert!(!ctx.entries_equivalent(&e1, &e2), "different callees");
    }

    #[test]
    fn label_vs_inst_never_equivalent() {
        let (m, f1, f2) = two_fns(|b, _| {
            b.ret(Some(b.const_i32(0)));
        });
        let ctx = EquivCtx::new(&m, m.func(f1), m.func(f2));
        let lbl = Entry::Label(m.func(f1).entry());
        let inst = Entry::Inst(m.func(f2).inst_ids()[0]);
        assert!(!ctx.entries_equivalent(&lbl, &inst));
    }
}
