//! The parallel merge pipeline: a schedule/prepare/commit restructuring
//! of the sequential FMSA driver ([`crate::pass::run_fmsa`]).
//!
//! The sequential driver interleaves cheap bookkeeping with the two
//! expensive per-attempt steps (sequence alignment and merge code
//! generation), leaving every core but one idle. This driver splits each
//! worklist *generation* into three stages (see `docs/pipeline.md` for
//! the architecture sketch):
//!
//! 1. **Schedule** (parallel): pop a batch of live subjects, query the
//!    [`crate::search::CandidateSearch`] index for each one's top
//!    candidates — concurrently over the generation's subjects, against
//!    a shared read-only index — snapshot the per-function mutation
//!    generation of every pair, and pre-fill the [`LinearizationCache`]
//!    (misses linearized on the worker pool, inserted sequentially).
//! 2. **Prepare** (parallel): for every distinct `(subject, candidate)`
//!    pair, a worker computes the alignment (under the
//!    [`fmsa_align::AlignmentBudget`] of [`FmsaOptions::budget`]) and the
//!    pre-codegen profitability gate
//!    ([`crate::profitability::optimistic_delta`]). A second parallel
//!    wave then runs **speculative merge codegen**
//!    ([`crate::merge::speculate_merge`]) for each subject's first
//!    promising candidate, building the merged body in a per-worker
//!    scratch module. Workers only read the main module; all results are
//!    speculative.
//! 3. **Commit** (sequential): subjects are visited in the exact order
//!    the sequential driver would visit them. Each prepared attempt is
//!    re-validated — if either function mutated since it was scheduled,
//!    or an earlier commit dirtied the candidate index, the stale part is
//!    recomputed inline. A fresh speculative body is **transplanted**
//!    into the main module ([`crate::merge::commit_speculative`]); a
//!    conflict (either input mutated since scheduling) discards the
//!    scratch body and falls back to direct sequential codegen. Exact
//!    profitability ([`crate::profitability::evaluate_indexed`]) and the
//!    §III-A commit run here, feeding accepted merges back into the
//!    search index, the linearization cache, the call-site index, and
//!    the next generation's worklist.
//!
//! Accepted merges whose call-graph update provably interacts with
//! nothing else in the generation — every deletable side has zero
//! callers, the merged body calls neither its own originals nor anything
//! an earlier pending merge retired — are not committed one rewrite plan
//! (and one worker-pool barrier) at a time. Their bookkeeping runs
//! eagerly (so every later decision reads exactly the state the serial
//! driver would see) and the residual body work — thunking non-deletable
//! originals — is accumulated into one [`RewritePlan`] that flushes at
//! the end of the generation, or just before a merge that fails the
//! eligibility rules commits immediately. See `docs/pipeline.md`
//! ("Sharded schedule & batched commit") and the
//! [`PipelineStats::commit_barriers`] / [`PipelineStats::batched_merges`]
//! counters; bit-identity under batching is property-tested in
//! `tests/parallel_pipeline.rs`.
//!
//! Because the commit stage replays the sequential driver's decision
//! procedure exactly — same candidate order, same greedy
//! first-profitable rule, same profitability values — the optimized
//! module is **bit-identical to the sequential pass at any thread
//! count** (as long as the alignment budget never triggers, which the
//! default budget guarantees at paper scale). Parallelism only moves
//! *where* alignments are computed; staleness is handled by
//! re-validation, never by accepting a speculative result blindly.
//!
//! The oracle mode explores every candidate of every subject and commits
//! the global best per subject; its upper-bound claim depends on
//! evaluating against the exact module state, so [`run_fmsa_pipeline`]
//! delegates oracle runs to the sequential driver.

// This module *implements* the deprecated `PipelineOptions` surface; the
// replacement ([`crate::Config`]) converts into it.
#![allow(deprecated)]

use crate::callsites::{outgoing_calls, CallSiteIndex};
use crate::equivalence::EquivCtx;
use crate::faults::{FaultPlan, FaultSite};
use crate::fingerprint::Fingerprint;
use crate::linearize::{Entry, LinearizationCache};
use crate::merge::{
    commit_speculative, evaluate_speculative, merge_pair_aligned, speculate_merge, AlignAlgo,
    MergeInfo, SpeculativeMerge,
};
use crate::pass::{run_fmsa, seed_pass, FmsaOptions, FmsaStats, SeededPass};
use crate::profitability::{evaluate_indexed, optimistic_delta, ProfitReport};
use crate::quarantine::{panic_message, QuarantineStage};
use crate::ranking::Candidate;
use crate::telemetry::{trace, DecisionOutcome, DecisionRecord};
use crate::thunks::{
    can_delete, commit_merge_partitioned, prepare_commit_casts, Disposition, RewritePlan,
};
use fmsa_align::{align_with_plan, Alignment};
use fmsa_ir::{FuncId, Module};
use fmsa_target::CostModel;
use std::collections::{HashMap, HashSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Options of the pipeline driver, on top of [`FmsaOptions`].
#[deprecated(
    since = "0.7.0",
    note = "use `fmsa_core::Config` with `threads`/`batch`/`spec_depth` set (and \
            `fmsa_core::optimize`); `Config::pipeline_options()` converts for this driver"
)]
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PipelineOptions {
    /// Worker threads for the prepare stage; `0` selects the machine's
    /// available parallelism. `1` disables speculation entirely (no
    /// prepare stage, no wasted attempts) and runs the commit stage
    /// inline — the fastest configuration on a single core.
    pub threads: usize,
    /// Subjects scheduled per generation; `0` means the whole current
    /// frontier. Smaller batches waste less speculative work when
    /// commits invalidate scheduled attempts, at the cost of more
    /// prepare/commit barriers.
    pub batch: usize,
    /// How many of each subject's promising candidates get speculative
    /// merge codegen in the prepare stage (scratch-module build,
    /// transplanted at commit). `0` disables speculation entirely (PR 2
    /// behaviour: commit regenerates every merged body inline);
    /// `usize::MAX` covers every prepared pair. Defaults to `usize::MAX`:
    /// the greedy commit stage code-generates every candidate until the
    /// first profitable one, so on merge-sparse workloads most prepared
    /// pairs really do reach codegen. No effect with one thread.
    pub spec_depth: usize,
    /// Deterministic fault injection (testing and the `experiments
    /// faults` harness). Disabled by default; when active, the plan
    /// forces panics / verifier rejections / scratch corruption at its
    /// enabled sites and the pipeline must quarantine or degrade — see
    /// [`crate::faults`] and `docs/robustness.md`.
    pub faults: FaultPlan,
}

impl Default for PipelineOptions {
    fn default() -> Self {
        PipelineOptions {
            threads: 0,
            batch: 0,
            spec_depth: usize::MAX,
            faults: FaultPlan::disabled(),
        }
    }
}

impl PipelineOptions {
    /// Convenience: a pipeline with a fixed thread count.
    pub fn with_threads(threads: usize) -> PipelineOptions {
        PipelineOptions { threads, ..PipelineOptions::default() }
    }

    /// The worker count this configuration resolves to on this machine
    /// (`threads == 0` means available parallelism).
    pub fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            rayon::current_num_threads()
        } else {
            self.threads
        }
    }
}

/// Telemetry of one pipeline run (reported by the bench harness).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PipelineStats {
    /// Worker threads used by the prepare stage.
    pub threads: usize,
    /// Schedule/prepare/commit generations executed.
    pub generations: usize,
    /// Attempts aligned speculatively by the prepare stage.
    pub prepared: usize,
    /// Prepared alignments consumed unchanged by the commit stage.
    pub reused: usize,
    /// Attempts whose prepared state was stale (function mutated since
    /// scheduling) and was recomputed inline.
    pub recomputed: usize,
    /// Attempts skipped by the sound pre-codegen profitability gate.
    pub gate_skipped: usize,
    /// Attempts abandoned by the alignment budget's length cap.
    pub budget_skipped: usize,
    /// Merged bodies built speculatively by the prepare stage.
    pub spec_built: usize,
    /// Speculative bodies consumed unmodified by the commit stage:
    /// profitability was decided on the scratch build, and profitable
    /// bodies were transplanted. Replaces one sequential codegen each.
    pub spec_used: usize,
    /// Of [`PipelineStats::spec_used`], merges committed from a
    /// transplanted speculative body (the rest evaluated unprofitable
    /// and were discarded without ever touching the main module).
    pub spec_committed: usize,
    /// Speculative bodies discarded by a conflict (input mutated since
    /// scheduling, or the transplant could not resolve a reference); the
    /// commit stage fell back to direct sequential codegen.
    pub spec_fallback: usize,
    /// Wall-clock of the schedule stage — the sum of
    /// [`PipelineStats::schedule_query`] and
    /// [`PipelineStats::schedule_prefill`], kept as the stage total.
    pub schedule: Duration,
    /// Of [`PipelineStats::schedule`], the candidate-query phase: one
    /// index query per subject, run concurrently over the generation's
    /// subjects against the shared read-only index.
    pub schedule_query: Duration,
    /// Of [`PipelineStats::schedule`], the linearization-cache pre-fill
    /// (misses computed on the worker pool, inserted sequentially).
    pub schedule_prefill: Duration,
    /// Summed per-task compute time inside the schedule stage's parallel
    /// phases. `schedule_cpu / schedule` is the stage's effective
    /// parallelism; at one thread the two are equal minus loop overhead.
    pub schedule_cpu: Duration,
    /// Wall-clock of the parallel prepare stage (alignment + speculative
    /// codegen waves).
    pub prepare: Duration,
    /// Summed per-task compute time inside the prepare stage's waves
    /// (the CPU time behind the [`PipelineStats::prepare`] wall).
    pub prepare_cpu: Duration,
    /// Of [`PipelineStats::prepare`], the speculative-codegen wave.
    pub spec_codegen: Duration,
    /// Wall-clock of the sequential commit stage.
    pub commit: Duration,
    /// Of [`PipelineStats::commit`], time spent producing merged bodies
    /// (transplants plus fallback codegen plus profitability). This is the
    /// serial-codegen cost the speculative path exists to shrink.
    pub commit_codegen: Duration,
    /// Of [`PipelineStats::commit_codegen`], the transplant splices alone.
    pub transplant: Duration,
    /// Of [`PipelineStats::commit`], the call-graph update (call-site
    /// rewriting + thunking) — executed as a partitioned rewrite plan on
    /// the worker pool ([`crate::thunks::RewritePlan`]).
    pub rewrite: Duration,
    /// Scratch modules whose type store was shared entirely by reference
    /// (copy-on-write frozen prefix): setup copied zero types.
    pub scratch_cow_shared: usize,
    /// Scratch modules that had to copy at least one type eagerly (donor
    /// store interned types after its last freeze).
    pub scratch_cloned: usize,
    /// Types interned into scratch suffixes by speculative builds (the
    /// suffix re-interned into the main store on transplant/discard).
    pub scratch_suffix_types: usize,
    /// Estimated heap bytes the shared frozen prefixes avoided copying
    /// (see [`fmsa_ir::ScratchSetup::bytes_avoided`]).
    pub scratch_bytes_avoided: u64,
    /// Pairs quarantined because sequence alignment panicked.
    pub quarantined_align: usize,
    /// Pairs quarantined because merge codegen panicked.
    pub quarantined_codegen: usize,
    /// Pairs quarantined because the verifier rejected the merged body.
    pub quarantined_verify: usize,
    /// Panics caught at any fault boundary (worker waves and the commit
    /// stage). Unlike the quarantine counters this is thread-dependent:
    /// a pair whose fault fires both in a prepare worker and in the
    /// commit stage's inline retry is caught twice at `threads > 1` and
    /// once at `threads == 1`.
    pub panics_caught: usize,
    /// Speculative bodies rejected by re-verification at commit (the
    /// scratch build was corrupted or the transplant produced an invalid
    /// body); the pipeline degraded to inline codegen, no quarantine.
    pub poisoned_scratch: usize,
    /// Differential mismatches attributed to this run by an external
    /// driver (the fuzz farm); the pipeline itself never sets it.
    pub mismatches: usize,
    /// Commit-stage barriers: rewrite-plan executions, each one a
    /// detach/pool-scope handoff. One per batch flush plus one per
    /// immediate (batch-ineligible) commit — the quantity batching
    /// shrinks from one-per-merge to one-(or a few)-per-generation.
    pub commit_barriers: usize,
    /// Merges committed through a deferred batch (bookkeeping eager,
    /// body work folded into the generation's flush; no private barrier).
    pub batched_merges: usize,
    /// Profitable merges that failed the batch-eligibility rules (a
    /// deletable side with live callers, a merged body calling its own
    /// originals or a pending side, or a feedback merge onto a pending
    /// merged function) and fell back to an immediate single-merge plan,
    /// flushing any pending batch first.
    pub batch_fallback: usize,
}

impl PipelineStats {
    /// Fraction of commit-stage merge bodies that consumed a speculative
    /// build unmodified (`spec_used / (spec_used + spec_fallback)`);
    /// `None` when no speculative body reached commit.
    pub fn spec_hit_rate(&self) -> Option<f64> {
        let total = self.spec_used + self.spec_fallback;
        (total > 0).then(|| self.spec_used as f64 / total as f64)
    }

    /// Total pairs quarantined, across all stages.
    pub fn quarantined(&self) -> usize {
        self.quarantined_align + self.quarantined_codegen + self.quarantined_verify
    }

    /// Folds another run's stats into this one — how streamed-corpus
    /// drivers (`experiments scale`) aggregate per-chunk pipeline runs
    /// into corpus totals. Counters and timers add; `threads` keeps the
    /// maximum seen.
    pub fn accumulate(&mut self, other: &PipelineStats) {
        self.threads = self.threads.max(other.threads);
        self.generations += other.generations;
        self.prepared += other.prepared;
        self.reused += other.reused;
        self.recomputed += other.recomputed;
        self.gate_skipped += other.gate_skipped;
        self.budget_skipped += other.budget_skipped;
        self.spec_built += other.spec_built;
        self.spec_used += other.spec_used;
        self.spec_committed += other.spec_committed;
        self.spec_fallback += other.spec_fallback;
        self.schedule += other.schedule;
        self.schedule_query += other.schedule_query;
        self.schedule_prefill += other.schedule_prefill;
        self.schedule_cpu += other.schedule_cpu;
        self.prepare += other.prepare;
        self.prepare_cpu += other.prepare_cpu;
        self.spec_codegen += other.spec_codegen;
        self.commit += other.commit;
        self.commit_codegen += other.commit_codegen;
        self.transplant += other.transplant;
        self.rewrite += other.rewrite;
        self.scratch_cow_shared += other.scratch_cow_shared;
        self.scratch_cloned += other.scratch_cloned;
        self.scratch_suffix_types += other.scratch_suffix_types;
        self.scratch_bytes_avoided += other.scratch_bytes_avoided;
        self.quarantined_align += other.quarantined_align;
        self.quarantined_codegen += other.quarantined_codegen;
        self.quarantined_verify += other.quarantined_verify;
        self.panics_caught += other.panics_caught;
        self.poisoned_scratch += other.poisoned_scratch;
        self.mismatches += other.mismatches;
        self.commit_barriers += other.commit_barriers;
        self.batched_merges += other.batched_merges;
        self.batch_fallback += other.batch_fallback;
    }

    /// The canonical `(name, value)` serialization of every counter and
    /// stage timer — the single source behind `fmsa_opt --stats`,
    /// `experiments ... --json`, and the daemon's registry gauges, so a
    /// counter added here can never drift out of any of them.
    pub fn fields(&self) -> Vec<(&'static str, StatValue)> {
        use StatValue::{Count, Ratio, Secs};
        vec![
            ("threads", Count(self.threads as u64)),
            ("generations", Count(self.generations as u64)),
            ("prepared", Count(self.prepared as u64)),
            ("reused", Count(self.reused as u64)),
            ("recomputed", Count(self.recomputed as u64)),
            ("gate_skipped", Count(self.gate_skipped as u64)),
            ("budget_skipped", Count(self.budget_skipped as u64)),
            ("schedule_s", Secs(self.schedule.as_secs_f64())),
            ("schedule_query_s", Secs(self.schedule_query.as_secs_f64())),
            ("schedule_prefill_s", Secs(self.schedule_prefill.as_secs_f64())),
            ("schedule_cpu_s", Secs(self.schedule_cpu.as_secs_f64())),
            ("prepare_s", Secs(self.prepare.as_secs_f64())),
            ("prepare_cpu_s", Secs(self.prepare_cpu.as_secs_f64())),
            ("spec_codegen_s", Secs(self.spec_codegen.as_secs_f64())),
            ("commit_s", Secs(self.commit.as_secs_f64())),
            ("commit_codegen_s", Secs(self.commit_codegen.as_secs_f64())),
            ("transplant_s", Secs(self.transplant.as_secs_f64())),
            ("rewrite_s", Secs(self.rewrite.as_secs_f64())),
            ("commit_barriers", Count(self.commit_barriers as u64)),
            ("batched_merges", Count(self.batched_merges as u64)),
            ("batch_fallback", Count(self.batch_fallback as u64)),
            ("scratch_cow_shared", Count(self.scratch_cow_shared as u64)),
            ("scratch_cloned", Count(self.scratch_cloned as u64)),
            ("scratch_suffix_types", Count(self.scratch_suffix_types as u64)),
            ("scratch_bytes_avoided", Count(self.scratch_bytes_avoided)),
            ("spec_built", Count(self.spec_built as u64)),
            ("spec_used", Count(self.spec_used as u64)),
            ("spec_committed", Count(self.spec_committed as u64)),
            ("spec_fallback", Count(self.spec_fallback as u64)),
            ("spec_hit_rate", Ratio(self.spec_hit_rate().unwrap_or(f64::NAN))),
            ("quarantined", Count(self.quarantined() as u64)),
            ("quarantined_align", Count(self.quarantined_align as u64)),
            ("quarantined_codegen", Count(self.quarantined_codegen as u64)),
            ("quarantined_verify", Count(self.quarantined_verify as u64)),
            ("panics_caught", Count(self.panics_caught as u64)),
            ("poisoned_scratch", Count(self.poisoned_scratch as u64)),
        ]
    }

    /// Mirrors [`PipelineStats::fields`] into `registry` as gauges named
    /// `fmsa_pipeline_<field>` (timers in seconds) — how the daemon's
    /// `/metrics` absorbs pipeline counters.
    pub fn record_into(&self, registry: &crate::telemetry::Registry) {
        for (name, value) in self.fields() {
            let full = format!("fmsa_pipeline_{name}");
            let g = registry.gauge_with(&full, "pipeline counter (see PipelineStats)", &[]);
            match value {
                StatValue::Count(v) => g.set(v as f64),
                StatValue::Secs(v) | StatValue::Ratio(v) => {
                    g.set(if v.is_finite() { v } else { 0.0 })
                }
            }
        }
    }
}

/// One value of [`PipelineStats::fields`].
#[derive(Debug, Clone, Copy)]
pub enum StatValue {
    /// An event count (serialized as an integer).
    Count(u64),
    /// A wall/CPU duration in seconds.
    Secs(f64),
    /// A dimensionless ratio (NaN when undefined).
    Ratio(f64),
}

/// One speculative attempt out of the prepare stage.
struct Prepared {
    /// `None` when the alignment budget skipped the pair.
    alignment: Option<Alignment>,
    /// Whether the optimistic-Δ gate left the pair in play.
    promising: bool,
    /// Speculatively generated merged body (scratch module), present for
    /// the subject's top [`PipelineOptions::spec_depth`] promising
    /// candidates.
    spec: Option<SpeculativeMerge>,
    /// Mutation generations of `(f1, f2)` at schedule time.
    gens: (u64, u64),
    /// Global invalidation epoch at schedule time (bumped when a failed
    /// commit leaves the module in a state the per-function generations
    /// cannot describe).
    epoch: u64,
}

/// Aligns one pair under the options' alignment budget. Returns `None`
/// when the budget refuses the pair.
fn align_budgeted(
    module: &Module,
    f1: FuncId,
    f2: FuncId,
    seq1: &[Entry],
    seq2: &[Entry],
    opts: &FmsaOptions,
) -> Option<Alignment> {
    let plan = opts.budget.plan(seq1.len(), seq2.len());
    let ctx = EquivCtx::new(module, module.func(f1), module.func(f2));
    align_with_plan(
        seq1,
        seq2,
        |a, b| ctx.entries_equivalent(a, b),
        &opts.merge.scoring,
        plan,
        opts.merge.algorithm == AlignAlgo::Hirschberg,
    )
}

/// Executes the pending batch of deferred merges (no-op when empty):
/// thunks the non-deletable originals and re-confirms the removals, all
/// through one [`RewritePlan::execute`] barrier. The eligibility rules
/// guarantee the plan rewrites no caller, so the flush commutes with
/// everything that ran since the merges were accepted; `expected` holds
/// the dispositions predicted at decision time, re-checked here.
#[allow(clippy::too_many_arguments)]
fn flush_batch(
    module: &mut Module,
    plan: &mut RewritePlan,
    expected: &mut Vec<(Disposition, Disposition)>,
    pool: Option<&rayon::ThreadPool>,
    stats: &mut FmsaStats,
    pstats: &mut PipelineStats,
    call_sites: &mut CallSiteIndex,
    lin_cache: &mut LinearizationCache,
    epoch: &mut u64,
    dirty: &mut bool,
) {
    if plan.merges() == 0 {
        return;
    }
    let _span = trace::span("fmsa", "flush_batch");
    let t0 = Instant::now();
    let taken = std::mem::take(plan);
    let expect = std::mem::take(expected);
    match taken.execute(module, pool) {
        Ok(results) => {
            debug_assert_eq!(
                results.iter().map(|r| (r.first, r.second)).collect::<Vec<_>>(),
                expect,
                "deferred dispositions must match the decision-time prediction"
            );
            debug_assert!(
                results.iter().all(|r| r.touched.is_empty()),
                "batch-eligible merges must not touch any caller"
            );
        }
        Err(_) => {
            // Should not happen: eligible merges schedule no caller
            // rewrites and their thunk cast types were pre-interned at
            // decision time. The merges stay accepted (their bookkeeping
            // already fed the feedback loop); resynchronize the caches
            // with whatever state the module is in and invalidate all
            // speculative work.
            *call_sites = CallSiteIndex::build(module);
            *lin_cache = LinearizationCache::new();
            *epoch += 1;
            *dirty = true;
        }
    }
    let dt = t0.elapsed();
    stats.timers.update_calls += dt;
    pstats.rewrite += dt;
    pstats.commit_barriers += 1;
}

/// Runs the FMSA optimization over `module` with the parallel merge
/// pipeline. Produces a module bit-identical to [`run_fmsa`] for any
/// `pipe.threads` (see the module docs for why), in substantially less
/// wall-clock: alignments are computed speculatively on a worker pool,
/// functions are linearized once per generation instead of once per
/// attempt, and profitability queries hit an incremental call-site index
/// instead of rescanning the module.
///
/// Oracle runs ([`FmsaOptions::oracle`]) delegate to the sequential
/// driver.
pub fn run_fmsa_pipeline(
    module: &mut Module,
    opts: &FmsaOptions,
    pipe: &PipelineOptions,
) -> FmsaStats {
    if opts.oracle {
        return run_fmsa(module, opts);
    }
    let _pass_span = trace::span("fmsa", "pass");
    let threads = pipe.resolved_threads();
    let faults = pipe.faults;
    let pool = rayon::ThreadPoolBuilder::new().num_threads(threads).build().expect("thread pool");
    let cm = CostModel::new(opts.arch);
    let mut stats = FmsaStats { size_before: cm.module_size(module), ..FmsaStats::default() };
    let mut pstats = PipelineStats { threads, ..PipelineStats::default() };

    // Seed fingerprints and the candidate-search index with the exact
    // same helper as the sequential driver (part of the bit-identity
    // guarantee).
    let SeededPass { mut fingerprints, mut index, mut worklist, mut live } =
        seed_pass(module, opts, &mut stats.timers, (threads > 1).then_some(&pool));

    // Pipeline-only state: the linearization cache, the incremental
    // call-site index, and per-function mutation generations used to
    // re-validate speculative work.
    let mut lin_cache = LinearizationCache::new();
    let mut call_sites = CallSiteIndex::build(module);
    let mut gens: HashMap<FuncId, u64> = HashMap::new();
    let mut epoch: u64 = 0;
    let gen_of = |gens: &HashMap<FuncId, u64>, f: FuncId| gens.get(&f).copied().unwrap_or(0);

    // Speculative codegen holds one scratch module per prepared promising
    // pair until the commit stage consumes (or discards) it; an unbounded
    // generation over a multi-thousand-subject frontier would pin tens of
    // thousands of them at once. When the user leaves `batch` at 0, bound
    // the generation while speculating — batching is decision-neutral
    // (property-tested), it only trades barrier count for peak memory.
    const SPEC_DEFAULT_BATCH: usize = 256;
    let batch = if pipe.batch == 0 && threads > 1 && pipe.spec_depth > 0 {
        SPEC_DEFAULT_BATCH
    } else {
        pipe.batch
    };

    while !worklist.is_empty() {
        pstats.generations += 1;
        let _gen_span = trace::span_with("fmsa", "generation", || {
            vec![("gen", pstats.generations.to_string())]
        });
        // ---------------------------------------------------- schedule
        let take = if batch == 0 { worklist.len() } else { batch.min(worklist.len()) };
        let mut subjects = Vec::with_capacity(take);
        for _ in 0..take {
            let f = worklist.pop_front().expect("worklist non-empty");
            if live.contains(&f) && module.is_live(f) {
                subjects.push(f);
            }
        }
        if subjects.is_empty() {
            continue;
        }
        // Freeze the type store while the module is quiescent: every
        // scratch module the speculative wave builds then shares the
        // store's frozen prefix by reference (copy-on-write) instead of
        // deep-copying it per speculation. Invisible to interning
        // semantics (ids, dedupe, order), so bit-identity is unaffected.
        if threads > 1 && pipe.spec_depth > 0 {
            module.types.freeze();
        }
        let sched_span = trace::span("fmsa", "schedule");
        let t0 = Instant::now();
        let scheduled: Vec<(FuncId, Vec<Candidate>)> = {
            // Queries only read the index and the fingerprint map
            // (`CandidateSearch` is `Send + Sync` for exactly this), and
            // `par_map` returns results in input order, so parallel
            // scheduling is candidate-for-candidate identical to the
            // serial loop. At one thread `par_map` runs inline.
            let shared_index: &dyn crate::search::CandidateSearch = index.as_ref();
            let fps = &fingerprints;
            let query_cpu = AtomicU64::new(0);
            let out = pool.par_map(&subjects, |_, &f| {
                let _s = trace::span("fmsa", "query");
                let t = Instant::now();
                let cands =
                    shared_index.candidates(f, &fps[&f], fps, opts.threshold, opts.min_similarity);
                query_cpu.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                (f, cands)
            });
            pstats.schedule_cpu += Duration::from_nanos(query_cpu.into_inner());
            out
        };
        let dt = t0.elapsed();
        stats.timers.ranking += dt;
        pstats.schedule += dt;
        pstats.schedule_query += dt;
        drop(sched_span);

        // ----------------------------------------------------- prepare
        let mut prepared: HashMap<(FuncId, FuncId), Prepared> = HashMap::new();
        if threads > 1 {
            let _prep_span = trace::span("fmsa", "prepare");
            let mut jobs: Vec<(FuncId, FuncId)> = Vec::new();
            let mut seen: HashSet<(FuncId, FuncId)> = HashSet::new();
            for (f1, cands) in &scheduled {
                for c in cands {
                    if seen.insert((*f1, c.func)) {
                        jobs.push((*f1, c.func));
                    }
                }
            }
            let t0 = Instant::now();
            let mut lin_funcs: Vec<FuncId> = Vec::with_capacity(jobs.len() * 2);
            for &(f1, f2) in &jobs {
                lin_funcs.push(f1);
                lin_funcs.push(f2);
            }
            pstats.schedule_cpu += lin_cache.prefill(module, &lin_funcs, &pool);
            let dt = t0.elapsed();
            stats.timers.linearization += dt;
            pstats.schedule += dt;
            pstats.schedule_prefill += dt;
            let t0 = Instant::now();
            let frozen: &Module = module;
            let cache: &LinearizationCache = &lin_cache;
            // Fault boundary: a panicking align worker must not take the
            // scope down (the stand-in pool rethrows at join). A panicked
            // pair simply stays out of `prepared`; the commit stage's
            // inline retry is the authoritative attempt, so the
            // quarantine decision is made there, identically at every
            // thread count.
            let align_cpu = AtomicU64::new(0);
            let results = pool.par_map(&jobs, |_, &(f1, f2)| {
                let _s = trace::span("fmsa", "align");
                let t = Instant::now();
                let r = catch_unwind(AssertUnwindSafe(|| {
                    let seq1 = cache.cached(f1).expect("pre-filled");
                    let seq2 = cache.cached(f2).expect("pre-filled");
                    let (n1, n2) = (&frozen.func(f1).name, &frozen.func(f2).name);
                    if faults.fires(FaultSite::Align, n1, n2) {
                        panic!("injected fault: align {n1} {n2}");
                    }
                    let alignment = align_budgeted(frozen, f1, f2, &seq1, &seq2, opts);
                    let promising = alignment.as_ref().is_some_and(|al| {
                        optimistic_delta(frozen, &cm, f1, f2, &seq1, &seq2, al) > 0
                    });
                    (alignment, promising)
                }))
                .ok();
                align_cpu.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                r
            });
            stats.timers.alignment += t0.elapsed();
            pstats.prepare += t0.elapsed();
            pstats.prepare_cpu += Duration::from_nanos(align_cpu.into_inner());
            for ((f1, f2), result) in jobs.into_iter().zip(results) {
                let Some((alignment, promising)) = result else {
                    pstats.panics_caught += 1;
                    continue;
                };
                pstats.prepared += 1;
                let gens_pair = (gen_of(&gens, f1), gen_of(&gens, f2));
                prepared.insert(
                    (f1, f2),
                    Prepared { alignment, promising, spec: None, gens: gens_pair, epoch },
                );
            }

            // Second wave: speculative merge codegen into per-worker
            // scratch modules, for each subject's top `spec_depth`
            // promising candidates in rank order. The greedy commit stage
            // code-generates candidates until the first profitable one, so
            // every body built here for a pair the commit actually reaches
            // replaces one sequential codegen with a cheap transplant.
            if pipe.spec_depth > 0 {
                let _spec_span = trace::span("fmsa", "spec_codegen");
                let mut spec_jobs: Vec<(FuncId, FuncId)> = Vec::new();
                let mut seen: HashSet<(FuncId, FuncId)> = HashSet::new();
                for (f1, cands) in &scheduled {
                    let mut picked = 0usize;
                    for c in cands {
                        if picked >= pipe.spec_depth {
                            break;
                        }
                        let key = (*f1, c.func);
                        let Some(p) = prepared.get(&key) else { continue };
                        if p.promising && p.alignment.is_some() && seen.insert(key) {
                            spec_jobs.push(key);
                            picked += 1;
                        }
                    }
                }
                let t0 = Instant::now();
                let frozen: &Module = module;
                let cache: &LinearizationCache = &lin_cache;
                let snapshot: &HashMap<(FuncId, FuncId), Prepared> = &prepared;
                // Fault boundary: speculative work is redundant by
                // construction (commit can always regenerate inline), so
                // a panicked or poisoned build degrades to `None` — the
                // fallback path — and never decides a quarantine.
                let spec_cpu = AtomicU64::new(0);
                let bodies = pool.par_map(&spec_jobs, |_, &(f1, f2)| {
                    let _s = trace::span("fmsa", "speculate");
                    let t = Instant::now();
                    let r = catch_unwind(AssertUnwindSafe(|| {
                        let seq1 = cache.cached(f1).expect("pre-filled");
                        let seq2 = cache.cached(f2).expect("pre-filled");
                        let (n1, n2) = (&frozen.func(f1).name, &frozen.func(f2).name);
                        if faults.fires(FaultSite::Codegen, n1, n2) {
                            panic!("injected fault: codegen {n1} {n2}");
                        }
                        let alignment = snapshot[&(f1, f2)]
                            .alignment
                            .clone()
                            .expect("speculation only targets aligned pairs");
                        let mut body =
                            speculate_merge(frozen, f1, f2, &seq1, &seq2, alignment, &opts.merge)
                                .ok();
                        if let Some(b) = body.as_mut() {
                            if faults.fires(FaultSite::ScratchPoison, n1, n2) {
                                b.poison_scratch();
                            }
                        }
                        body
                    }))
                    .ok();
                    spec_cpu.fetch_add(t.elapsed().as_nanos() as u64, Ordering::Relaxed);
                    r
                });
                stats.timers.codegen += t0.elapsed();
                pstats.prepare += t0.elapsed();
                pstats.spec_codegen += t0.elapsed();
                pstats.prepare_cpu += Duration::from_nanos(spec_cpu.into_inner());
                for (key, body) in spec_jobs.into_iter().zip(bodies) {
                    let body = match body {
                        Some(b) => b,
                        None => {
                            pstats.panics_caught += 1;
                            None
                        }
                    };
                    if let Some(b) = &body {
                        pstats.spec_built += 1;
                        let setup = b.scratch_setup();
                        if setup.is_fully_shared() {
                            pstats.scratch_cow_shared += 1;
                        } else {
                            pstats.scratch_cloned += 1;
                        }
                        pstats.scratch_suffix_types += b.suffix_types();
                        pstats.scratch_bytes_avoided += setup.bytes_avoided();
                    }
                    // A build error is left as `None`: commit will replay
                    // the identical failure through direct codegen.
                    prepared.get_mut(&key).expect("prepared above").spec = body;
                }
            }
        }

        // ------------------------------------------------------ commit
        // `dirty` flips on the first commit of the generation: from then
        // on the index may answer differently than it did at schedule
        // time, so candidate lists are re-queried (exactly what the
        // sequential driver would see at this point of the worklist).
        let commit_span = trace::span("fmsa", "commit");
        let t_commit = Instant::now();
        let mut dirty = false;
        // Deferred call-graph work of the generation's batch-eligible
        // merges (thunk bodies, removal confirmation), executed through
        // one barrier by `flush_batch` — at generation end, or earlier
        // when an ineligible merge must commit immediately.
        let mut plan = RewritePlan::new();
        let mut pending_expect: Vec<(Disposition, Disposition)> = Vec::new();
        for (f1, scheduled_cands) in scheduled {
            if !live.contains(&f1) || !module.is_live(f1) {
                continue;
            }
            let cands = if dirty {
                let t0 = Instant::now();
                let c = index.candidates(
                    f1,
                    &fingerprints[&f1],
                    &fingerprints,
                    opts.threshold,
                    opts.min_similarity,
                );
                stats.timers.ranking += t0.elapsed();
                c
            } else {
                scheduled_cands
            };

            for (pos, cand) in cands.iter().enumerate() {
                stats.attempted += 1;
                let t0 = Instant::now();
                let seq1 = lin_cache.get(module, f1);
                let seq2 = lin_cache.get(module, cand.func);
                stats.timers.linearization += t0.elapsed();
                let gens_now = (gen_of(&gens, f1), gen_of(&gens, cand.func));
                // Names key the fault plan and the quarantine log: they
                // are stable across thread counts, unlike ids-at-commit.
                let n1 = module.func(f1).name.clone();
                let n2 = module.func(cand.func).name.clone();
                let _att_span = trace::span_with("fmsa", "merge_attempt", || {
                    vec![("subject", n1.clone()), ("candidate", n2.clone())]
                });
                // Decision-log state for this attempt: every exit path
                // below resolves it to exactly one outcome.
                let rec = |align_score: Option<i64>,
                           delta: Option<i64>,
                           outcome: DecisionOutcome| DecisionRecord {
                    subject: n1.clone(),
                    candidate: n2.clone(),
                    similarity: cand.similarity,
                    rank: (pos + 1) as u32,
                    align_score,
                    delta,
                    outcome,
                };
                // Did this attempt discard a speculative body (conflict /
                // fallback)? A merge that still commits is then reported
                // as `conflict-fallback` instead of plain `merged`.
                let mut att_fallback = false;
                let mut spec_body: Option<SpeculativeMerge> = None;
                let (alignment, promising) = match prepared.get_mut(&(f1, cand.func)) {
                    Some(p) if p.gens == gens_now && p.epoch == epoch => {
                        pstats.reused += 1;
                        spec_body = p.spec.take();
                        (p.alignment.clone(), p.promising)
                    }
                    stale => {
                        if threads > 1 {
                            pstats.recomputed += 1;
                        }
                        // Conflict rule: an input mutated since scheduling
                        // (or the epoch advanced), so the scratch body was
                        // built against a state the module no longer has.
                        // Discard and count it here — the recomputed pair
                        // may be budget- or gate-skipped before reaching
                        // the codegen point below.
                        if let Some(p) = stale {
                            if p.spec.take().is_some() {
                                pstats.spec_fallback += 1;
                                att_fallback = true;
                            }
                        }
                        let t0 = Instant::now();
                        // Fault boundary: this inline recompute is the
                        // authoritative alignment (it also runs for pairs
                        // whose prepare worker panicked), so a panic here
                        // quarantines the pair — deterministically, since
                        // nothing on this path depends on thread count.
                        let recomputed = catch_unwind(AssertUnwindSafe(|| {
                            if faults.fires(FaultSite::Align, &n1, &n2) {
                                panic!("injected fault: align {n1} {n2}");
                            }
                            let al = align_budgeted(module, f1, cand.func, &seq1, &seq2, opts);
                            let promising = al.as_ref().is_some_and(|al| {
                                optimistic_delta(module, &cm, f1, cand.func, &seq1, &seq2, al) > 0
                            });
                            (al, promising)
                        }));
                        stats.timers.alignment += t0.elapsed();
                        match recomputed {
                            Ok(r) => r,
                            Err(payload) => {
                                pstats.panics_caught += 1;
                                if stats.quarantine.push(
                                    QuarantineStage::Align,
                                    &n1,
                                    &n2,
                                    panic_message(payload.as_ref()),
                                    faults.seed,
                                ) {
                                    pstats.quarantined_align += 1;
                                }
                                stats.decisions.push(rec(None, None, DecisionOutcome::Quarantined));
                                continue;
                            }
                        }
                    }
                };
                let align_score = alignment.as_ref().map(|al| al.score);
                let Some(alignment) = alignment else {
                    pstats.budget_skipped += 1;
                    stats.decisions.push(rec(None, None, DecisionOutcome::BudgetSkipped));
                    continue;
                };
                if !promising {
                    // Sound gate: the optimistic Δ bound proves the real Δ
                    // would be ≤ 0, so the sequential driver would have
                    // generated and discarded this merge. Skip codegen.
                    pstats.gate_skipped += 1;
                    stats.decisions.push(rec(align_score, None, DecisionOutcome::GateSkipped));
                    continue;
                }
                let t0 = Instant::now();
                // An injected verifier fault must produce the same
                // quarantine at every thread count, so it is decided on
                // the inline path below (the only path all thread counts
                // share); a pending speculative body is discarded first.
                let verify_inject = faults.fires(FaultSite::Verify, &n1, &n2);
                if verify_inject {
                    if let Some(spec) = spec_body.take() {
                        spec.discard_into(module);
                        pstats.spec_fallback += 1;
                        att_fallback = true;
                    }
                }
                // A speculative body built on another thread is only
                // trusted after re-verifying it in its scratch module —
                // a corrupted build must degrade to inline codegen (the
                // sequential result), never reach the main module.
                if spec_body.as_ref().is_some_and(|spec| !spec.body_valid()) {
                    if let Some(spec) = spec_body.take() {
                        spec.discard_into(module);
                    }
                    pstats.poisoned_scratch += 1;
                    pstats.spec_fallback += 1;
                    att_fallback = true;
                }
                // `outcome`: a merged function present in the module plus
                // its profitability, or `None` when the attempt is over
                // (codegen failure, a quarantined pair, or a speculative
                // body that evaluated unprofitable and was discarded
                // without a transplant).
                let mut att_early: Option<DecisionRecord> = None;
                let outcome: Option<(MergeInfo, ProfitReport)> = 'attempt: {
                    if let Some(spec) = spec_body {
                        // Profitability is decided on the scratch body;
                        // only profitable merges pay for a transplant.
                        let report = evaluate_speculative(module, &cm, &spec, &call_sites);
                        if !report.is_profitable() {
                            // The sequential driver would have generated
                            // this body and discarded it; replay its type
                            // interning and reject the attempt.
                            spec.discard_into(module);
                            pstats.spec_used += 1;
                            att_early = Some(rec(
                                align_score,
                                Some(report.delta),
                                DecisionOutcome::Unprofitable,
                            ));
                            break 'attempt None;
                        }
                        let t_tr = Instant::now();
                        match commit_speculative(module, spec, &opts.merge) {
                            Ok(info) => {
                                pstats.transplant += t_tr.elapsed();
                                let errs = fmsa_ir::verify_function(module, info.merged);
                                if errs.is_empty() {
                                    pstats.spec_used += 1;
                                    pstats.spec_committed += 1;
                                    break 'attempt Some((info, report));
                                }
                                // Invalid transplant: the sequential
                                // driver would have built this body inline
                                // successfully, so degrade (no quarantine)
                                // and regenerate below.
                                module.remove_function(info.merged);
                                pstats.poisoned_scratch += 1;
                                pstats.spec_fallback += 1;
                                att_fallback = true;
                            }
                            Err(_) => {
                                // Unresolvable cross-module reference:
                                // regenerate inline below.
                                pstats.spec_fallback += 1;
                                att_fallback = true;
                            }
                        }
                    }
                    // Authoritative inline codegen, behind a fault
                    // boundary: this path runs identically at every
                    // thread count, so its panics (and verifier
                    // rejections of its output) decide quarantine.
                    let arena_mark = module.func_arena_len();
                    let built = catch_unwind(AssertUnwindSafe(|| {
                        if faults.fires(FaultSite::Codegen, &n1, &n2) {
                            panic!("injected fault: codegen {n1} {n2}");
                        }
                        merge_pair_aligned(
                            module,
                            f1,
                            cand.func,
                            seq1.to_vec(),
                            seq2.to_vec(),
                            alignment,
                            &opts.merge,
                        )
                    }));
                    let info = match built {
                        Ok(Ok(info)) => info,
                        Ok(Err(_)) => {
                            att_early = Some(rec(align_score, None, DecisionOutcome::Failed));
                            break 'attempt None;
                        }
                        Err(payload) => {
                            // A panic mid-codegen can leave partially
                            // built functions behind; sweep everything
                            // created since the snapshot.
                            for idx in arena_mark..module.func_arena_len() {
                                let id = FuncId::from_index(idx);
                                if module.is_live(id) {
                                    module.remove_function(id);
                                }
                            }
                            pstats.panics_caught += 1;
                            if stats.quarantine.push(
                                QuarantineStage::Codegen,
                                &n1,
                                &n2,
                                panic_message(payload.as_ref()),
                                faults.seed,
                            ) {
                                pstats.quarantined_codegen += 1;
                            }
                            att_early = Some(rec(align_score, None, DecisionOutcome::Quarantined));
                            break 'attempt None;
                        }
                    };
                    // Never commit an unverified merged body: a rejection
                    // here is a real bug in codegen (or an injected
                    // verifier fault), so the pair is quarantined.
                    let errs = fmsa_ir::verify_function(module, info.merged);
                    if verify_inject || !errs.is_empty() {
                        let reason = if verify_inject {
                            format!("injected fault: verify {n1} {n2}")
                        } else {
                            errs[0].to_string()
                        };
                        module.remove_function(info.merged);
                        if stats.quarantine.push(
                            QuarantineStage::Verify,
                            &n1,
                            &n2,
                            reason,
                            faults.seed,
                        ) {
                            pstats.quarantined_verify += 1;
                        }
                        att_early = Some(rec(align_score, None, DecisionOutcome::Quarantined));
                        break 'attempt None;
                    }
                    let report = evaluate_indexed(module, &cm, &info, &call_sites);
                    Some((info, report))
                };
                stats.timers.codegen += t0.elapsed();
                pstats.commit_codegen += t0.elapsed();
                match outcome {
                    Some((info, report)) if report.is_profitable() => {
                        let pool_ref = (threads > 1).then_some(&pool);
                        // Batch eligibility — the merge's call-graph
                        // update must provably interact with nothing else
                        // in the generation: every deletable side has
                        // zero callers to rewrite (after the serial
                        // loop's own filters), neither side is a merged
                        // function still pending in the batch, and the
                        // merged body is already final (it calls neither
                        // its own originals nor anything the batch
                        // retired). Such a commit touches no third
                        // function, so its bookkeeping can run eagerly
                        // and its body work can wait for the flush.
                        let deletable = [can_delete(module, f1), can_delete(module, info.f2)];
                        let callers_clear = [(f1, deletable[0]), (info.f2, deletable[1])]
                            .into_iter()
                            .all(|(func, del)| {
                                !del || call_sites.callers_of(func).into_iter().all(|g| {
                                    g == func || plan.retired().contains(&g) || !module.is_live(g)
                                })
                            });
                        let defer = callers_clear
                            && !plan.merged_funcs().contains(&f1)
                            && !plan.merged_funcs().contains(&info.f2)
                            && {
                                let merged_out = outgoing_calls(module.func(info.merged));
                                !merged_out.contains_key(&f1)
                                    && !merged_out.contains_key(&info.f2)
                                    && merged_out.keys().all(|c| !plan.retired().contains(c))
                            };
                        if defer {
                            let t0 = Instant::now();
                            let dispositions = deletable.map(|d| {
                                if d {
                                    Disposition::Deleted
                                } else {
                                    Disposition::Thunk
                                }
                            });
                            // Serial commit would intern the thunk-side
                            // cast container types right now; replay that
                            // eagerly so the deferred execution leaves
                            // the type store bit-identical.
                            if prepare_commit_casts(module, &info).is_err() {
                                // Mirror the immediate path's failed
                                // commit: drop the merge, resynchronize,
                                // abandon the subject.
                                flush_batch(
                                    module,
                                    &mut plan,
                                    &mut pending_expect,
                                    pool_ref,
                                    &mut stats,
                                    &mut pstats,
                                    &mut call_sites,
                                    &mut lin_cache,
                                    &mut epoch,
                                    &mut dirty,
                                );
                                module.remove_function(info.merged);
                                stats.decisions.push(rec(
                                    align_score,
                                    Some(report.delta),
                                    DecisionOutcome::Failed,
                                ));
                                call_sites = CallSiteIndex::build(module);
                                lin_cache = LinearizationCache::new();
                                epoch += 1;
                                dirty = true;
                                break;
                            }
                            plan.add_merge(module, &info, &call_sites);
                            pending_expect.push((dispositions[0], dispositions[1]));
                            stats.timers.update_calls += t0.elapsed();
                            pstats.rewrite += t0.elapsed();
                            pstats.batched_merges += 1;
                            stats.merges += 1;
                            stats.rank_positions.push(pos + 1);
                            stats.decisions.push(rec(
                                align_score,
                                Some(report.delta),
                                if att_fallback {
                                    DecisionOutcome::ConflictFallback
                                } else {
                                    DecisionOutcome::Merged
                                },
                            ));
                            for d in dispositions {
                                match d {
                                    Disposition::Deleted => stats.deleted += 1,
                                    Disposition::Thunk => stats.thunks += 1,
                                }
                            }
                            live.remove(&f1);
                            live.remove(&info.f2);
                            fingerprints.remove(&f1);
                            fingerprints.remove(&info.f2);
                            index.remove(f1);
                            index.remove(info.f2);
                            for (func, disposition) in
                                [(f1, dispositions[0]), (info.f2, dispositions[1])]
                            {
                                lin_cache.invalidate(func);
                                match disposition {
                                    Disposition::Deleted => {
                                        call_sites.remove(func);
                                        gens.remove(&func);
                                        // Eager removal keeps liveness
                                        // and `func_by_name` (merged-name
                                        // deduplication) identical to the
                                        // serial driver; the flush's
                                        // re-removal is a no-op.
                                        module.remove_function(func);
                                    }
                                    Disposition::Thunk => {
                                        call_sites.set_thunk(func, info.merged);
                                        *gens.entry(func).or_insert(0) += 1;
                                    }
                                }
                            }
                            // No caller is touched (that is what the
                            // eligibility rules guarantee), and the
                            // merged body is final: its index entry and
                            // fingerprint are exact now.
                            call_sites.refresh(module, info.merged);
                            let t0 = Instant::now();
                            let merged_fp = Fingerprint::of(module, info.merged);
                            index.insert(info.merged, &merged_fp);
                            fingerprints.insert(info.merged, merged_fp);
                            stats.timers.fingerprinting += t0.elapsed();
                            live.insert(info.merged);
                            worklist.push_back(info.merged);
                            dirty = true;
                            break; // greedy: first profitable candidate wins
                        }
                        // Ineligible: the pending batch precedes this
                        // merge in serial order, so flush it first, then
                        // commit through an immediate single-merge plan.
                        flush_batch(
                            module,
                            &mut plan,
                            &mut pending_expect,
                            pool_ref,
                            &mut stats,
                            &mut pstats,
                            &mut call_sites,
                            &mut lin_cache,
                            &mut epoch,
                            &mut dirty,
                        );
                        pstats.batch_fallback += 1;
                        let t0 = Instant::now();
                        // Call-graph update through the partitioned plan:
                        // callers come from the incremental call-site
                        // index, disjoint caller partitions rewrite on the
                        // worker pool. Single-threaded runs execute the
                        // partitions inline (no pool handoff).
                        let commit =
                            match commit_merge_partitioned(module, &info, &call_sites, pool_ref) {
                                Ok(c) => c,
                                Err(_) => {
                                    // Should not happen (guarded by tests).
                                    // Mirror the sequential driver: drop the
                                    // merge and abandon this subject. The
                                    // failed commit may have partially
                                    // rewritten call sites, a state the
                                    // per-function generations cannot
                                    // describe, so resynchronize the caches
                                    // with the module and invalidate all
                                    // speculative work.
                                    module.remove_function(info.merged);
                                    stats.decisions.push(rec(
                                        align_score,
                                        Some(report.delta),
                                        DecisionOutcome::Failed,
                                    ));
                                    call_sites = CallSiteIndex::build(module);
                                    lin_cache = LinearizationCache::new();
                                    epoch += 1;
                                    dirty = true;
                                    break;
                                }
                            };
                        stats.timers.update_calls += t0.elapsed();
                        pstats.rewrite += t0.elapsed();
                        pstats.commit_barriers += 1;
                        stats.merges += 1;
                        stats.rank_positions.push(pos + 1);
                        stats.decisions.push(rec(
                            align_score,
                            Some(report.delta),
                            if att_fallback {
                                DecisionOutcome::ConflictFallback
                            } else {
                                DecisionOutcome::Merged
                            },
                        ));
                        for d in [commit.first, commit.second] {
                            match d {
                                Disposition::Deleted => stats.deleted += 1,
                                Disposition::Thunk => stats.thunks += 1,
                            }
                        }
                        // Retire the originals from the merge pool.
                        live.remove(&f1);
                        live.remove(&info.f2);
                        fingerprints.remove(&f1);
                        fingerprints.remove(&info.f2);
                        index.remove(f1);
                        index.remove(info.f2);
                        // Maintain the pipeline caches: mutated functions
                        // get new generations and fresh call-site entries,
                        // deleted ones leave every structure.
                        for (func, disposition) in [(f1, commit.first), (info.f2, commit.second)] {
                            lin_cache.invalidate(func);
                            match disposition {
                                Disposition::Deleted => {
                                    call_sites.remove(func);
                                    gens.remove(&func);
                                }
                                Disposition::Thunk => {
                                    call_sites.refresh(module, func);
                                    *gens.entry(func).or_insert(0) += 1;
                                }
                            }
                        }
                        for &g in &commit.touched {
                            lin_cache.invalidate(g);
                            *gens.entry(g).or_insert(0) += 1;
                            if module.is_live(g) {
                                call_sites.refresh(module, g);
                            } else {
                                call_sites.remove(g);
                            }
                        }
                        call_sites.refresh(module, info.merged);
                        // Feedback loop: rewritten callers re-enter the
                        // index with fresh fingerprints, the merged
                        // function joins the next generation's worklist.
                        let t0 = Instant::now();
                        for g in commit.touched {
                            if live.contains(&g) && module.is_live(g) {
                                let fp = Fingerprint::of(module, g);
                                index.insert(g, &fp);
                                fingerprints.insert(g, fp);
                            }
                        }
                        let merged_fp = Fingerprint::of(module, info.merged);
                        index.insert(info.merged, &merged_fp);
                        fingerprints.insert(info.merged, merged_fp);
                        stats.timers.fingerprinting += t0.elapsed();
                        live.insert(info.merged);
                        worklist.push_back(info.merged);
                        dirty = true;
                        break; // greedy: first profitable candidate wins
                    }
                    Some((info, report)) => {
                        module.remove_function(info.merged);
                        stats.decisions.push(rec(
                            align_score,
                            Some(report.delta),
                            DecisionOutcome::Unprofitable,
                        ));
                    }
                    None => {
                        if let Some(r) = att_early.take() {
                            stats.decisions.push(r);
                        }
                    }
                }
            }
        }
        // End-of-generation flush: nothing pends across generations —
        // the next schedule must see final bodies before freezing the
        // type store and handing shared references to the workers.
        flush_batch(
            module,
            &mut plan,
            &mut pending_expect,
            (threads > 1).then_some(&pool),
            &mut stats,
            &mut pstats,
            &mut call_sites,
            &mut lin_cache,
            &mut epoch,
            &mut dirty,
        );
        let _ = dirty;
        pstats.commit += t_commit.elapsed();
        drop(commit_span);
    }

    stats.size_after = cm.module_size(module);
    stats.pipeline = Some(pstats);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::printer::print_module;
    use fmsa_ir::{FuncBuilder, Value};

    fn clone_family(m: &mut Module, count: usize, body_len: usize) -> Vec<FuncId> {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        let mut out = Vec::new();
        for k in 0..count {
            let f = m.create_function(format!("fam{k}"), fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..body_len {
                v = b.add(v, b.const_i32(j as i32));
                v = b.mul(v, Value::Param(1));
            }
            v = b.xor(v, b.const_i32(k as i32 + 100));
            b.ret(Some(v));
            out.push(f);
        }
        out
    }

    fn assert_matches_sequential(opts: &FmsaOptions, pipe: &PipelineOptions) {
        let mut m1 = Module::new("m");
        clone_family(&mut m1, 6, 12);
        let seq = run_fmsa(&mut m1, opts);
        let mut m2 = Module::new("m");
        clone_family(&mut m2, 6, 12);
        let par = run_fmsa_pipeline(&mut m2, opts, pipe);
        assert_eq!(print_module(&m1), print_module(&m2), "module text must be bit-identical");
        assert_eq!(seq.merges, par.merges);
        assert_eq!(seq.attempted, par.attempted);
        assert_eq!(seq.rank_positions, par.rank_positions);
        assert_eq!(seq.size_after, par.size_after);
        assert_eq!((seq.deleted, seq.thunks), (par.deleted, par.thunks));
    }

    #[test]
    fn single_thread_matches_sequential() {
        assert_matches_sequential(
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(1),
        );
    }

    #[test]
    fn multi_thread_matches_sequential() {
        for threads in [2, 4, 8] {
            assert_matches_sequential(
                &FmsaOptions::with_threshold(5),
                &PipelineOptions::with_threads(threads),
            );
        }
    }

    #[test]
    fn small_batches_match_sequential() {
        for batch in [1, 2, 3] {
            assert_matches_sequential(
                &FmsaOptions::with_threshold(5),
                &PipelineOptions { threads: 4, batch, ..PipelineOptions::default() },
            );
        }
    }

    #[test]
    fn lsh_pipeline_matches_lsh_sequential() {
        assert_matches_sequential(&FmsaOptions::with_lsh(5), &PipelineOptions::with_threads(4));
    }

    #[test]
    fn oracle_delegates_to_sequential() {
        let mut m1 = Module::new("m");
        clone_family(&mut m1, 5, 10);
        let seq = run_fmsa(&mut m1, &FmsaOptions::oracle());
        let mut m2 = Module::new("m");
        clone_family(&mut m2, 5, 10);
        let par =
            run_fmsa_pipeline(&mut m2, &FmsaOptions::oracle(), &PipelineOptions::with_threads(4));
        assert_eq!(print_module(&m1), print_module(&m2));
        assert!(par.pipeline.is_none(), "oracle runs report sequential stats");
        assert_eq!(seq.merges, par.merges);
    }

    #[test]
    fn pipeline_reports_telemetry() {
        let mut m = Module::new("m");
        clone_family(&mut m, 6, 12);
        let stats = run_fmsa_pipeline(
            &mut m,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(4),
        );
        let p = stats.pipeline.expect("pipeline stats");
        assert_eq!(p.threads, 4);
        assert!(p.generations >= 1);
        assert!(p.prepared > 0);
        assert!(p.reused > 0);
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn speculative_codegen_depths_match_sequential() {
        // 0 = PR 2 behaviour (no speculation), 1 = top candidate only,
        // MAX = every prepared pair; all must be decision-invisible.
        for spec_depth in [0, 1, usize::MAX] {
            assert_matches_sequential(
                &FmsaOptions::with_threshold(5),
                &PipelineOptions { threads: 4, spec_depth, ..PipelineOptions::default() },
            );
        }
    }

    #[test]
    fn speculative_bodies_are_built_and_committed() {
        let mut m = Module::new("m");
        clone_family(&mut m, 6, 12);
        let stats = run_fmsa_pipeline(
            &mut m,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(4),
        );
        let p = stats.pipeline.expect("pipeline stats");
        assert!(p.spec_built > 0, "prepare must build speculative bodies: {p:?}");
        assert!(p.spec_committed > 0, "commit must transplant fresh bodies: {p:?}");
        assert!(p.spec_committed <= p.spec_used, "transplants are a subset of used: {p:?}");
        assert!(
            p.spec_used + p.spec_fallback <= p.spec_built + p.recomputed,
            "accounting sanity: {p:?}"
        );
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn scratch_stores_are_cow_shared_and_rewrite_timer_reported() {
        let mut m = Module::new("m");
        clone_family(&mut m, 6, 12);
        let stats = run_fmsa_pipeline(
            &mut m,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(4),
        );
        let p = stats.pipeline.expect("pipeline stats");
        assert!(p.spec_built > 0, "speculation must run: {p:?}");
        assert_eq!(
            p.scratch_cow_shared + p.scratch_cloned,
            p.spec_built,
            "every built body accounts its scratch setup: {p:?}"
        );
        // The store is frozen at schedule time, so at least the first
        // generation's scratches share it entirely by reference.
        assert!(p.scratch_cow_shared > 0, "frozen donor must be COW-shared: {p:?}");
        assert!(p.scratch_bytes_avoided > 0, "{p:?}");
        assert!(p.rewrite > Duration::ZERO, "commits must book rewrite time: {p:?}");
        assert!(p.rewrite <= p.commit, "{p:?}");
    }

    #[test]
    fn generation_commits_are_batched() {
        // Clone families are internal with no callers, so merges are
        // batch-eligible unless a subject picks a merged function still
        // pending in the batch (a fallback, flushed and committed
        // immediately). Either way, every merge is accounted once and
        // the barrier count stays below one-per-merge.
        let mut m = Module::new("m");
        clone_family(&mut m, 8, 12);
        let stats = run_fmsa_pipeline(
            &mut m,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(4),
        );
        let p = stats.pipeline.expect("pipeline stats");
        assert_eq!(p.batched_merges + p.batch_fallback, stats.merges, "{p:?}");
        assert!(p.batched_merges > 0, "eligible merges must defer: {p:?}");
        assert!(
            p.commit_barriers <= 2 * p.batch_fallback + p.generations,
            "per fallback: one flush plus one immediate barrier; plus at most one \
             flush per generation: {p:?}"
        );
        assert!(p.commit_barriers < stats.merges || stats.merges <= 1, "{p:?}");
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn schedule_timers_split_query_and_prefill() {
        let mut m = Module::new("m");
        clone_family(&mut m, 8, 12);
        let stats = run_fmsa_pipeline(
            &mut m,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(4),
        );
        let p = stats.pipeline.expect("pipeline stats");
        assert_eq!(p.schedule, p.schedule_query + p.schedule_prefill, "{p:?}");
        assert!(p.schedule_query > Duration::ZERO, "{p:?}");
        // Multi-thread runs pre-fill the cache and book CPU time for
        // the parallel phases.
        assert!(p.schedule_prefill > Duration::ZERO, "{p:?}");
        assert!(p.schedule_cpu > Duration::ZERO, "{p:?}");
        assert!(p.prepare_cpu > Duration::ZERO, "{p:?}");
    }

    #[test]
    fn spec_hit_rate_reported() {
        let p = PipelineStats { spec_used: 3, spec_fallback: 1, ..PipelineStats::default() };
        assert_eq!(p.spec_hit_rate(), Some(0.75));
        assert_eq!(PipelineStats::default().spec_hit_rate(), None);
    }

    #[test]
    fn injected_faults_quarantine_deterministically() {
        use crate::faults::{FaultPlan, FaultSite};
        crate::faults::silence_injected_panics();
        // High rate so the small family reliably faults somewhere.
        let plan = FaultPlan::new(0xFA17, 400_000, &FaultSite::ALL);
        let mut baseline = None;
        for threads in [1usize, 2, 4] {
            let mut m = Module::new("m");
            clone_family(&mut m, 6, 12);
            let stats = run_fmsa_pipeline(
                &mut m,
                &FmsaOptions::with_threshold(5),
                &PipelineOptions { threads, faults: plan, ..PipelineOptions::default() },
            );
            assert!(fmsa_ir::verify_module(&m).is_empty(), "faulted run stays valid");
            let p = stats.pipeline.expect("pipeline stats");
            assert_eq!(
                p.quarantined_align + p.quarantined_codegen + p.quarantined_verify,
                p.quarantined()
            );
            assert_eq!(stats.quarantine.len(), p.quarantined(), "log and counters agree");
            let snapshot = (print_module(&m), stats.quarantine.summary(), stats.merges);
            match &baseline {
                None => baseline = Some(snapshot),
                Some(b) => assert_eq!(b, &snapshot, "thread count {threads} diverged"),
            }
        }
        let (_, summary, _) = baseline.expect("ran");
        assert!(!summary.is_empty(), "this plan must quarantine something");
    }

    #[test]
    fn scratch_poison_degrades_without_quarantine() {
        use crate::faults::{FaultPlan, FaultSite};
        // Poison every scratch body: the pipeline must fall back to
        // inline codegen everywhere and still produce the clean output.
        let plan = FaultPlan::new(3, 1_000_000, &[FaultSite::ScratchPoison]);
        let mut clean = Module::new("m");
        clone_family(&mut clean, 6, 12);
        run_fmsa_pipeline(
            &mut clean,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions::with_threads(4),
        );
        let mut m = Module::new("m");
        clone_family(&mut m, 6, 12);
        let stats = run_fmsa_pipeline(
            &mut m,
            &FmsaOptions::with_threshold(5),
            &PipelineOptions { threads: 4, faults: plan, ..PipelineOptions::default() },
        );
        let p = stats.pipeline.expect("pipeline stats");
        assert!(p.poisoned_scratch > 0, "poison must be detected: {p:?}");
        assert_eq!(p.quarantined(), 0, "degradation, not quarantine: {p:?}");
        assert!(stats.quarantine.is_empty());
        assert!(stats.merges > 0, "merges still happen via the inline path");
        assert_eq!(print_module(&clean), print_module(&m), "output unchanged by poison");
    }

    #[test]
    fn budget_skip_abandons_pairs() {
        use fmsa_align::{AlignmentBudget, BudgetFallback};
        let mut m = Module::new("m");
        clone_family(&mut m, 4, 12);
        let opts = FmsaOptions {
            budget: AlignmentBudget {
                full_matrix_cells: usize::MAX,
                fallback: BudgetFallback::Skip,
                max_len: 4, // every family member is longer than this
            },
            ..FmsaOptions::with_threshold(5)
        };
        let stats = run_fmsa_pipeline(&mut m, &opts, &PipelineOptions::with_threads(2));
        assert_eq!(stats.merges, 0);
        assert!(stats.pipeline.expect("stats").budget_skipped > 0);
    }
}
