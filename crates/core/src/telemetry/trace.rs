//! Span tracing with Chrome trace-event export.
//!
//! The recorder is off by default and costs one relaxed atomic load
//! per [`span`] call while disabled — no allocation, no clock read, no
//! lock. When enabled, spans record begin/end event pairs into
//! per-thread sharded buffers (each thread appends through its own
//! mutex, uncontended in steady state), which [`drain`] collects and
//! [`export_chrome`] serializes as Chrome trace-event JSON that loads
//! directly in Perfetto or `chrome://tracing`.
//!
//! Nesting falls out of RAII: a [`SpanGuard`] records the end event
//! when dropped, so spans on one thread always form a well-bracketed
//! sequence (property-tested in `crates/core/tests/telemetry.rs`).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::Instant;

/// Per-thread event cap; beyond it events are counted as dropped
/// rather than recorded, bounding memory on long daemon runs.
const MAX_EVENTS_PER_THREAD: usize = 1 << 22;

static ENABLED: AtomicBool = AtomicBool::new(false);
static NEXT_TID: AtomicU64 = AtomicU64::new(1);
static EPOCH: OnceLock<Instant> = OnceLock::new();

fn epoch() -> Instant {
    *EPOCH.get_or_init(Instant::now)
}

fn now_micros() -> u64 {
    epoch().elapsed().as_micros() as u64
}

/// One recorded trace event (begin or end of a span).
#[derive(Debug, Clone)]
pub struct TraceEvent {
    /// Span name (e.g. `"prepare"`, `"merge_attempt"`).
    pub name: String,
    /// Category tag grouping related spans (e.g. `"pipeline"`).
    pub cat: &'static str,
    /// `true` for a begin event, `false` for the matching end.
    pub begin: bool,
    /// Microseconds since the process-wide trace epoch.
    pub ts: u64,
    /// Stable per-thread lane id (assigned on first span per thread).
    pub tid: u64,
    /// Extra key/value arguments attached to the begin event.
    pub args: Vec<(&'static str, String)>,
}

struct Shard {
    tid: u64,
    events: Vec<TraceEvent>,
    dropped: u64,
}

static SHARDS: Mutex<Vec<Arc<Mutex<Shard>>>> = Mutex::new(Vec::new());

thread_local! {
    static LOCAL: Arc<Mutex<Shard>> = {
        let tid = NEXT_TID.fetch_add(1, Ordering::Relaxed);
        let shard = Arc::new(Mutex::new(Shard { tid, events: Vec::new(), dropped: 0 }));
        SHARDS.lock().unwrap().push(Arc::clone(&shard));
        shard
    };
}

/// Returns whether the recorder is currently enabled.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Turns the recorder on. Spans entered after this call are recorded.
pub fn enable() {
    epoch(); // pin the epoch before the first event
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns the recorder off. In-flight [`SpanGuard`]s still record
/// their end events so pairs stay balanced.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

fn record(event: TraceEvent) {
    LOCAL.with(|shard| {
        let mut s = shard.lock().unwrap();
        if s.events.len() < MAX_EVENTS_PER_THREAD {
            s.events.push(event);
        } else {
            s.dropped += 1;
        }
    });
}

fn local_tid() -> u64 {
    LOCAL.with(|shard| shard.lock().unwrap().tid)
}

/// RAII guard for a span: records the end event on drop. Inert (and
/// free beyond the construction-time atomic load) when tracing is
/// disabled.
#[must_use = "a span covers the guard's lifetime; dropping it immediately records an empty span"]
pub struct SpanGuard {
    live: bool,
    name: &'static str,
    cat: &'static str,
}

impl Drop for SpanGuard {
    fn drop(&mut self) {
        if self.live {
            record(TraceEvent {
                name: self.name.to_string(),
                cat: self.cat,
                begin: false,
                ts: now_micros(),
                tid: local_tid(),
                args: Vec::new(),
            });
        }
    }
}

/// Enters a span named `name` in category `cat`. When the recorder is
/// disabled this is one atomic load and returns an inert guard.
#[inline]
pub fn span(cat: &'static str, name: &'static str) -> SpanGuard {
    if !enabled() {
        return SpanGuard { live: false, name, cat };
    }
    span_slow(cat, name, Vec::new())
}

/// Like [`span`] but attaches arguments to the begin event. The
/// closure runs only when the recorder is enabled, so argument
/// formatting costs nothing in the disabled path.
#[inline]
pub fn span_with<F>(cat: &'static str, name: &'static str, args: F) -> SpanGuard
where
    F: FnOnce() -> Vec<(&'static str, String)>,
{
    if !enabled() {
        return SpanGuard { live: false, name, cat };
    }
    span_slow(cat, name, args())
}

#[cold]
fn span_slow(
    cat: &'static str,
    name: &'static str,
    args: Vec<(&'static str, String)>,
) -> SpanGuard {
    record(TraceEvent {
        name: name.to_string(),
        cat,
        begin: true,
        ts: now_micros(),
        tid: local_tid(),
        args,
    });
    SpanGuard { live: true, name, cat }
}

/// Collects and clears every thread's recorded events. Returns the
/// events grouped by thread (each thread's events in record order)
/// plus the total number of events dropped to the per-thread cap.
pub fn drain() -> (Vec<TraceEvent>, u64) {
    let shards = SHARDS.lock().unwrap();
    let mut out = Vec::new();
    let mut dropped = 0;
    for shard in shards.iter() {
        let mut s = shard.lock().unwrap();
        out.append(&mut s.events);
        dropped += s.dropped;
        s.dropped = 0;
    }
    out.sort_by_key(|e| (e.tid, e.ts));
    (out, dropped)
}

/// Serializes events as Chrome trace-event JSON (the `traceEvents`
/// array form). The output loads in Perfetto / `chrome://tracing`.
pub fn export_chrome(events: &[TraceEvent]) -> String {
    let mut out = String::with_capacity(events.len() * 64 + 128);
    out.push_str("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n");
    out.push_str(
        "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,\
         \"args\":{\"name\":\"fmsa\"}}",
    );
    for e in events {
        out.push_str(",\n{");
        out.push_str(&format!(
            "\"name\":\"{}\",\"cat\":\"{}\",\"ph\":\"{}\",\"ts\":{},\"pid\":1,\"tid\":{}",
            super::json_escape(&e.name),
            super::json_escape(e.cat),
            if e.begin { "B" } else { "E" },
            e.ts,
            e.tid
        ));
        if !e.args.is_empty() {
            out.push_str(",\"args\":{");
            for (i, (k, v)) in e.args.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!(
                    "\"{}\":\"{}\"",
                    super::json_escape(k),
                    super::json_escape(v)
                ));
            }
            out.push('}');
        }
        out.push('}');
    }
    out.push_str("\n]}\n");
    out
}

/// Validates span discipline: within each thread, begin/end events
/// must form a well-bracketed sequence with non-decreasing timestamps
/// and matching names. Returns a description of the first violation.
pub fn check_nesting(events: &[TraceEvent]) -> Result<(), String> {
    use std::collections::HashMap;
    let mut stacks: HashMap<u64, Vec<&str>> = HashMap::new();
    let mut last_ts: HashMap<u64, u64> = HashMap::new();
    for e in events {
        if let Some(&prev) = last_ts.get(&e.tid) {
            if e.ts < prev {
                return Err(format!(
                    "tid {} timestamp went backwards: {} after {}",
                    e.tid, e.ts, prev
                ));
            }
        }
        last_ts.insert(e.tid, e.ts);
        let stack = stacks.entry(e.tid).or_default();
        if e.begin {
            stack.push(&e.name);
        } else {
            match stack.pop() {
                Some(open) if open == e.name => {}
                Some(open) => {
                    return Err(format!(
                        "tid {}: end of \"{}\" while \"{}\" is open",
                        e.tid, e.name, open
                    ));
                }
                None => {
                    return Err(format!("tid {}: end of \"{}\" with no open span", e.tid, e.name));
                }
            }
        }
    }
    for (tid, stack) in &stacks {
        if !stack.is_empty() {
            return Err(format!("tid {}: {} span(s) left open: {:?}", tid, stack.len(), stack));
        }
    }
    Ok(())
}
