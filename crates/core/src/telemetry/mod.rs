//! Flight recorder: dependency-free tracing, metrics, and merge
//! decision logging for the whole stack.
//!
//! Three instruments, one principle — *telemetry observes, never
//! decides*. Nothing in this module influences scheduling, merge
//! order, or codegen, so output stays bit-identical with telemetry on
//! or off, at any thread count.
//!
//! - [`trace`] — hierarchical spans (pass → generation → stage →
//!   merge attempt; daemon: connection → request) recorded into
//!   per-thread sharded buffers behind a single `AtomicBool`, exported
//!   as Chrome trace-event JSON viewable in Perfetto
//!   (`fmsa_opt --trace-out trace.json`).
//! - [`metrics`] — a named registry of counters, gauges, and
//!   log-bucketed histograms with one snapshot API rendered as
//!   Prometheus text exposition (`GET /metrics` on `fmsa-serve`) or
//!   JSON.
//! - [`decisions`] — a bounded structured record per merge attempt
//!   (pair names, similarity, alignment score, Δ, outcome), dumpable
//!   as JSON lines (`--explain-merges`) and queryable on the daemon
//!   (`GET /v1/merges/recent`).
//!
//! See `docs/observability.md` for the span model, metric names, and
//! the decision-log schema.

pub mod decisions;
pub mod metrics;
pub mod trace;

pub use decisions::{DecisionLog, DecisionOutcome, DecisionRecord};
pub use metrics::{Registry, Snapshot};
pub use trace::{span, SpanGuard, TraceEvent};

/// Escapes a string for embedding in a JSON string literal.
///
/// Shared by the trace exporter, the decision log, and callers that
/// hand-render JSON without a serializer dependency.
pub fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` the way our JSON emitters expect: finite numbers
/// round-trip, non-finite values degrade to `0` (JSON has no NaN).
pub fn json_f64(v: f64) -> String {
    if v.is_finite() {
        if v == v.trunc() && v.abs() < 1e15 {
            // Integral value: print without a fractional tail so JSON
            // output is stable across platforms.
            format!("{:.1}", v)
        } else {
            format!("{}", v)
        }
    } else {
        "0".to_string()
    }
}
