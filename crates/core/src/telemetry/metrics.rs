//! A named metrics registry: counters, gauges, and log-bucketed
//! histograms, with one snapshot API rendered as Prometheus text
//! exposition or JSON.
//!
//! Handles ([`Counter`], [`Gauge`], [`Histogram`]) are cheap clones
//! around atomics — registration takes the registry lock once, updates
//! are lock-free. Series are keyed by `(name, sorted labels)`;
//! registering the same key twice returns the same underlying series,
//! so scrape-time re-registration is idempotent.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Metric family kind, mirrored into the Prometheus `# TYPE` line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Kind {
    /// Monotonically increasing count.
    Counter,
    /// Point-in-time value that can go up or down.
    Gauge,
    /// Distribution over log-spaced buckets with sum and count.
    Histogram,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Counter => "counter",
            Kind::Gauge => "gauge",
            Kind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter handle.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge handle (stores an `f64` in atomic bits).
#[derive(Clone)]
pub struct Gauge(Arc<AtomicU64>);

impl Gauge {
    /// Sets the gauge to `v`.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

struct HistCore {
    /// Upper bounds of the finite buckets, strictly increasing. One
    /// extra implicit `+Inf` bucket follows.
    bounds: Vec<f64>,
    /// Per-bucket observation counts (`bounds.len() + 1` entries).
    buckets: Vec<AtomicU64>,
    count: AtomicU64,
    /// Sum of observed values, accumulated as `f64` bits under CAS.
    sum_bits: AtomicU64,
}

/// A histogram handle over log-spaced (or caller-provided) buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistCore>);

impl Histogram {
    /// Records one observation.
    pub fn observe(&self, v: f64) {
        let idx = self.0.bounds.partition_point(|b| v > *b);
        self.0.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.0.count.fetch_add(1, Ordering::Relaxed);
        let _ = self.0.sum_bits.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |bits| {
            Some((f64::from_bits(bits) + v).to_bits())
        });
    }

    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.0.count.load(Ordering::Relaxed)
    }

    /// Sum of observed values.
    pub fn sum(&self) -> f64 {
        f64::from_bits(self.0.sum_bits.load(Ordering::Relaxed))
    }
}

/// Returns `count` log-spaced bucket bounds starting at `start`,
/// multiplying by `factor` each step.
pub fn exp_buckets(start: f64, factor: f64, count: usize) -> Vec<f64> {
    assert!(start > 0.0 && factor > 1.0, "exp_buckets needs start > 0, factor > 1");
    let mut v = Vec::with_capacity(count);
    let mut b = start;
    for _ in 0..count {
        v.push(b);
        b *= factor;
    }
    v
}

/// Default log-spaced bounds for latency-in-seconds histograms:
/// 100 µs … ~26 s, doubling per bucket.
pub fn latency_buckets() -> Vec<f64> {
    exp_buckets(1e-4, 2.0, 18)
}

enum Series {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Family {
    kind: Kind,
    help: String,
    /// Keyed by the rendered label set (`label="v",…`), empty string
    /// for the unlabelled series. BTreeMap keeps exposition sorted.
    series: BTreeMap<String, (Vec<(String, String)>, Series)>,
}

/// The registry: a named set of metric families.
#[derive(Default)]
pub struct Registry {
    families: Mutex<BTreeMap<String, Family>>,
}

fn label_key(labels: &[(&str, &str)]) -> (String, Vec<(String, String)>) {
    let mut sorted: Vec<(String, String)> =
        labels.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect();
    sorted.sort();
    let key = sorted
        .iter()
        .map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v)))
        .collect::<Vec<_>>()
        .join(",");
    (key, sorted)
}

impl Registry {
    /// Creates an empty registry.
    pub fn new() -> Registry {
        Registry::default()
    }

    fn series(
        &self,
        name: &str,
        help: &str,
        kind: Kind,
        labels: &[(&str, &str)],
        make: impl FnOnce() -> Series,
    ) -> Series {
        let mut fams = self.families.lock().unwrap();
        let fam = fams.entry(name.to_string()).or_insert_with(|| Family {
            kind,
            help: help.to_string(),
            series: BTreeMap::new(),
        });
        assert!(fam.kind == kind, "metric {name} registered as {:?} and {:?}", fam.kind, kind);
        let (key, sorted) = label_key(labels);
        let (_, series) = fam.series.entry(key).or_insert_with(|| (sorted, make()));
        series.dup()
    }

    /// Registers (or fetches) an unlabelled counter.
    pub fn counter(&self, name: &str, help: &str) -> Counter {
        self.counter_with(name, help, &[])
    }

    /// Registers (or fetches) a counter with labels.
    pub fn counter_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Counter {
        match self.series(name, help, Kind::Counter, labels, || {
            Series::Counter(Counter(Arc::new(AtomicU64::new(0))))
        }) {
            Series::Counter(c) => c,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) an unlabelled gauge.
    pub fn gauge(&self, name: &str, help: &str) -> Gauge {
        self.gauge_with(name, help, &[])
    }

    /// Registers (or fetches) a gauge with labels.
    pub fn gauge_with(&self, name: &str, help: &str, labels: &[(&str, &str)]) -> Gauge {
        match self.series(name, help, Kind::Gauge, labels, || {
            Series::Gauge(Gauge(Arc::new(AtomicU64::new(0f64.to_bits()))))
        }) {
            Series::Gauge(g) => g,
            _ => unreachable!(),
        }
    }

    /// Registers (or fetches) an unlabelled histogram over `bounds`.
    pub fn histogram(&self, name: &str, help: &str, bounds: &[f64]) -> Histogram {
        self.histogram_with(name, help, bounds, &[])
    }

    /// Registers (or fetches) a histogram with labels. `bounds` is
    /// only consulted on first registration of the series.
    pub fn histogram_with(
        &self,
        name: &str,
        help: &str,
        bounds: &[f64],
        labels: &[(&str, &str)],
    ) -> Histogram {
        match self.series(name, help, Kind::Histogram, labels, || {
            let mut buckets = Vec::with_capacity(bounds.len() + 1);
            for _ in 0..=bounds.len() {
                buckets.push(AtomicU64::new(0));
            }
            Series::Histogram(Histogram(Arc::new(HistCore {
                bounds: bounds.to_vec(),
                buckets,
                count: AtomicU64::new(0),
                sum_bits: AtomicU64::new(0f64.to_bits()),
            })))
        }) {
            Series::Histogram(h) => h,
            _ => unreachable!(),
        }
    }

    /// Takes a point-in-time snapshot of every family and series.
    pub fn snapshot(&self) -> Snapshot {
        let fams = self.families.lock().unwrap();
        let mut families = Vec::with_capacity(fams.len());
        for (name, fam) in fams.iter() {
            let mut series = Vec::with_capacity(fam.series.len());
            for (_, (labels, s)) in fam.series.iter() {
                let value = match s {
                    Series::Counter(c) => SeriesValue::Counter(c.get()),
                    Series::Gauge(g) => SeriesValue::Gauge(g.get()),
                    Series::Histogram(h) => {
                        let mut cumulative = Vec::with_capacity(h.0.bounds.len() + 1);
                        let mut acc = 0u64;
                        for (i, b) in h.0.bounds.iter().enumerate() {
                            acc += h.0.buckets[i].load(Ordering::Relaxed);
                            cumulative.push((*b, acc));
                        }
                        acc += h.0.buckets[h.0.bounds.len()].load(Ordering::Relaxed);
                        cumulative.push((f64::INFINITY, acc));
                        SeriesValue::Histogram {
                            buckets: cumulative,
                            sum: h.sum(),
                            count: h.count(),
                        }
                    }
                };
                series.push(SeriesSnapshot { labels: labels.clone(), value });
            }
            families.push(FamilySnapshot {
                name: name.clone(),
                help: fam.help.clone(),
                kind: fam.kind,
                series,
            });
        }
        Snapshot { families }
    }
}

impl Series {
    fn dup(&self) -> Series {
        match self {
            Series::Counter(c) => Series::Counter(c.clone()),
            Series::Gauge(g) => Series::Gauge(g.clone()),
            Series::Histogram(h) => Series::Histogram(h.clone()),
        }
    }
}

/// A point-in-time copy of the registry's contents.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Families sorted by name.
    pub families: Vec<FamilySnapshot>,
}

/// One metric family in a [`Snapshot`].
#[derive(Debug, Clone)]
pub struct FamilySnapshot {
    /// Family name (e.g. `fmsa_http_requests_total`).
    pub name: String,
    /// Help text for the `# HELP` line.
    pub help: String,
    /// Family kind.
    pub kind: Kind,
    /// Series sorted by label set.
    pub series: Vec<SeriesSnapshot>,
}

/// One labelled series within a family.
#[derive(Debug, Clone)]
pub struct SeriesSnapshot {
    /// Sorted label pairs (may be empty).
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: SeriesValue,
}

/// Sampled value of one series.
#[derive(Debug, Clone)]
pub enum SeriesValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(f64),
    /// Histogram: cumulative `(upper_bound, count)` pairs ending with
    /// `+Inf`, plus sum and total count.
    Histogram {
        /// Cumulative bucket counts by upper bound.
        buckets: Vec<(f64, u64)>,
        /// Sum of observations.
        sum: f64,
        /// Total observation count (equals the `+Inf` bucket).
        count: u64,
    },
}

/// Escapes a Prometheus label value (`\` → `\\`, `"` → `\"`,
/// newline → `\n`).
pub fn escape_label_value(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn escape_help(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

fn fmt_value(v: f64) -> String {
    if v.is_infinite() {
        if v > 0.0 {
            "+Inf".to_string()
        } else {
            "-Inf".to_string()
        }
    } else if v.is_nan() {
        "NaN".to_string()
    } else if v == v.trunc() && v.abs() < 1e15 {
        format!("{}", v as i64)
    } else {
        format!("{}", v)
    }
}

fn labels_text(labels: &[(String, String)], extra: Option<(&str, String)>) -> String {
    let mut parts: Vec<String> =
        labels.iter().map(|(k, v)| format!("{}=\"{}\"", k, escape_label_value(v))).collect();
    if let Some((k, v)) = extra {
        parts.push(format!("{}=\"{}\"", k, escape_label_value(&v)));
    }
    if parts.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", parts.join(","))
    }
}

impl Snapshot {
    /// Renders the snapshot in Prometheus text exposition format
    /// (version 0.0.4), suitable for `GET /metrics`.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::new();
        for fam in &self.families {
            out.push_str(&format!("# HELP {} {}\n", fam.name, escape_help(&fam.help)));
            out.push_str(&format!("# TYPE {} {}\n", fam.name, fam.kind.as_str()));
            for s in &fam.series {
                match &s.value {
                    SeriesValue::Counter(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            labels_text(&s.labels, None),
                            v
                        ));
                    }
                    SeriesValue::Gauge(v) => {
                        out.push_str(&format!(
                            "{}{} {}\n",
                            fam.name,
                            labels_text(&s.labels, None),
                            fmt_value(*v)
                        ));
                    }
                    SeriesValue::Histogram { buckets, sum, count } => {
                        for (bound, cum) in buckets {
                            out.push_str(&format!(
                                "{}_bucket{} {}\n",
                                fam.name,
                                labels_text(&s.labels, Some(("le", fmt_value(*bound)))),
                                cum
                            ));
                        }
                        out.push_str(&format!(
                            "{}_sum{} {}\n",
                            fam.name,
                            labels_text(&s.labels, None),
                            fmt_value(*sum)
                        ));
                        out.push_str(&format!(
                            "{}_count{} {}\n",
                            fam.name,
                            labels_text(&s.labels, None),
                            count
                        ));
                    }
                }
            }
        }
        out
    }

    /// Renders the snapshot as a JSON object keyed by
    /// `name{labels}` → value (histograms expand to
    /// `name_sum` / `name_count` plus a bucket array).
    pub fn render_json(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        for fam in &self.families {
            for s in &fam.series {
                let key = format!("{}{}", fam.name, labels_text(&s.labels, None));
                match &s.value {
                    SeriesValue::Counter(v) => {
                        parts.push(format!("\"{}\":{}", super::json_escape(&key), v));
                    }
                    SeriesValue::Gauge(v) => {
                        parts.push(format!(
                            "\"{}\":{}",
                            super::json_escape(&key),
                            super::json_f64(*v)
                        ));
                    }
                    SeriesValue::Histogram { buckets, sum, count } => {
                        parts.push(format!("\"{}_count\":{}", super::json_escape(&key), count));
                        parts.push(format!(
                            "\"{}_sum\":{}",
                            super::json_escape(&key),
                            super::json_f64(*sum)
                        ));
                        let b: Vec<String> = buckets
                            .iter()
                            .map(|(bound, cum)| {
                                format!(
                                    "[{},{}]",
                                    if bound.is_infinite() {
                                        "null".to_string()
                                    } else {
                                        super::json_f64(*bound)
                                    },
                                    cum
                                )
                            })
                            .collect();
                        parts.push(format!(
                            "\"{}_buckets\":[{}]",
                            super::json_escape(&key),
                            b.join(",")
                        ));
                    }
                }
            }
        }
        format!("{{{}}}", parts.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn label_values_are_escaped() {
        assert_eq!(escape_label_value(r#"a\b"c"#), r#"a\\b\"c"#);
        assert_eq!(escape_label_value("line\nbreak"), "line\\nbreak");
        let r = Registry::new();
        r.counter_with("esc_total", "h", &[("path", "a\"b\\c\nd")]).inc();
        let text = r.snapshot().render_prometheus();
        assert!(
            text.contains(r#"esc_total{path="a\"b\\c\nd"} 1"#),
            "escaped series line missing from:\n{text}"
        );
        // The rendered line must stay a single exposition line.
        let series_line = text.lines().find(|l| l.starts_with("esc_total{")).unwrap();
        assert!(series_line.ends_with(" 1"));
    }

    #[test]
    fn histogram_buckets_are_cumulative_and_monotone() {
        let r = Registry::new();
        let h = r.histogram("lat_seconds", "h", &latency_buckets());
        let observed = [0.00005, 0.0002, 0.0002, 0.01, 1.5, 100.0];
        for v in observed {
            h.observe(v);
        }
        let snap = r.snapshot();
        let fam = &snap.families[0];
        let SeriesValue::Histogram { buckets, sum, count } = &fam.series[0].value else {
            panic!("expected a histogram");
        };
        assert_eq!(*count, 6);
        assert!((sum - observed.iter().sum::<f64>()).abs() < 1e-9);
        // Cumulative counts never decrease, bounds strictly increase,
        // and the +Inf bucket equals the total count.
        let mut prev_bound = f64::NEG_INFINITY;
        let mut prev_cum = 0;
        for (bound, cum) in buckets {
            assert!(*bound > prev_bound, "bounds not increasing");
            assert!(*cum >= prev_cum, "cumulative count decreased");
            prev_bound = *bound;
            prev_cum = *cum;
        }
        let (last_bound, last_cum) = buckets.last().unwrap();
        assert!(last_bound.is_infinite());
        assert_eq!(*last_cum, *count);
        // 100.0 is past the largest finite bound (~26 s): only +Inf
        // holds all six.
        let (_, largest_finite) = buckets[buckets.len() - 2];
        assert_eq!(largest_finite, 5);
        // Exposition renders one _bucket line per bound, le="+Inf" last,
        // then _sum and _count.
        let text = snap.render_prometheus();
        let bucket_lines: Vec<&str> =
            text.lines().filter(|l| l.starts_with("lat_seconds_bucket{")).collect();
        assert_eq!(bucket_lines.len(), buckets.len());
        assert!(bucket_lines.last().unwrap().contains(r#"le="+Inf""#));
        assert!(text.contains("lat_seconds_count 6"));
        assert!(text.contains("# TYPE lat_seconds histogram"));
    }

    #[test]
    fn registration_is_idempotent_and_series_sorted() {
        let r = Registry::new();
        r.counter_with("req_total", "h", &[("route", "/b"), ("status", "200")]).inc();
        // Same key, different label order: must hit the same series.
        r.counter_with("req_total", "h", &[("status", "200"), ("route", "/b")]).inc();
        r.counter_with("req_total", "h", &[("route", "/a"), ("status", "200")]).add(5);
        let text = r.snapshot().render_prometheus();
        assert!(text.contains(r#"req_total{route="/b",status="200"} 2"#), "got:\n{text}");
        let a = text.find(r#"route="/a""#).unwrap();
        let b = text.find(r#"route="/b""#).unwrap();
        assert!(a < b, "series not sorted by label set");
        // HELP/TYPE precede the first series line.
        assert!(text.find("# HELP req_total").unwrap() < a);
    }

    #[test]
    fn gauge_formatting_covers_integers_and_specials() {
        assert_eq!(fmt_value(3.0), "3");
        assert_eq!(fmt_value(0.25), "0.25");
        assert_eq!(fmt_value(f64::INFINITY), "+Inf");
        assert_eq!(fmt_value(f64::NEG_INFINITY), "-Inf");
        assert_eq!(fmt_value(f64::NAN), "NaN");
    }
}
