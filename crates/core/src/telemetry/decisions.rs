//! Per-attempt merge decision log.
//!
//! Every candidate the driver considers gets one structured record —
//! who was paired with whom, the ranking similarity, the alignment
//! score, the estimated Δ, and how the attempt resolved. The log is
//! the first real instrument for tuning the paper's threshold/ranking
//! heuristics: `fmsa_opt --explain-merges out.jsonl` dumps it as JSON
//! lines, and the daemon serves the most recent records from
//! `GET /v1/merges/recent?n=K`.
//!
//! Records are bounded ([`DecisionLog::DEFAULT_CAP`]); outcome
//! *counts* are unconditional, so they reconcile exactly against
//! `PipelineStats` even when old records have been evicted.

use std::collections::VecDeque;

/// How one merge attempt resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecisionOutcome {
    /// Profitable and committed.
    Merged,
    /// Committed, but the speculative body was discarded first (stale
    /// inputs / verify / transplant conflict) and codegen re-ran
    /// inline at commit. Only occurs with `threads > 1`.
    ConflictFallback,
    /// Merged body built and evaluated, Δ ≤ 0 — discarded.
    Unprofitable,
    /// Alignment's profitability gate said "not promising"; codegen
    /// was skipped.
    GateSkipped,
    /// The alignment budget expired before this pair was aligned.
    BudgetSkipped,
    /// The attempt faulted (align/codegen/verify) and was quarantined.
    Quarantined,
    /// Codegen returned an error (no merged body to evaluate).
    Failed,
}

impl DecisionOutcome {
    /// Stable lowercase identifier used in JSON output.
    pub fn as_str(self) -> &'static str {
        match self {
            DecisionOutcome::Merged => "merged",
            DecisionOutcome::ConflictFallback => "conflict-fallback",
            DecisionOutcome::Unprofitable => "unprofitable",
            DecisionOutcome::GateSkipped => "gate-skipped",
            DecisionOutcome::BudgetSkipped => "budget-skipped",
            DecisionOutcome::Quarantined => "quarantined",
            DecisionOutcome::Failed => "failed",
        }
    }

    /// All outcomes, in the order used by [`DecisionLog`] counts.
    pub const ALL: [DecisionOutcome; 7] = [
        DecisionOutcome::Merged,
        DecisionOutcome::ConflictFallback,
        DecisionOutcome::Unprofitable,
        DecisionOutcome::GateSkipped,
        DecisionOutcome::BudgetSkipped,
        DecisionOutcome::Quarantined,
        DecisionOutcome::Failed,
    ];

    fn idx(self) -> usize {
        DecisionOutcome::ALL.iter().position(|o| *o == self).unwrap()
    }
}

/// One recorded merge attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct DecisionRecord {
    /// Subject function name (the function seeking a partner).
    pub subject: String,
    /// Candidate partner's function name.
    pub candidate: String,
    /// Ranking similarity estimate for the pair (in `[0, 0.5]`).
    pub similarity: f64,
    /// 1-based position of the candidate in the subject's ranked list.
    pub rank: u32,
    /// Sequence alignment score, when alignment ran.
    pub align_score: Option<i64>,
    /// Estimated size delta Δ from the profitability model, when the
    /// merged body was built and evaluated (positive = profitable).
    pub delta: Option<i64>,
    /// How the attempt resolved.
    pub outcome: DecisionOutcome,
}

impl DecisionRecord {
    /// Renders the record as one JSON object (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = format!(
            "{{\"subject\":\"{}\",\"candidate\":\"{}\",\"similarity\":{},\"rank\":{}",
            super::json_escape(&self.subject),
            super::json_escape(&self.candidate),
            super::json_f64(self.similarity),
            self.rank
        );
        match self.align_score {
            Some(s) => out.push_str(&format!(",\"align_score\":{}", s)),
            None => out.push_str(",\"align_score\":null"),
        }
        match self.delta {
            Some(d) => out.push_str(&format!(",\"delta\":{}", d)),
            None => out.push_str(",\"delta\":null"),
        }
        out.push_str(&format!(",\"outcome\":\"{}\"}}", self.outcome.as_str()));
        out
    }
}

/// A bounded ring of [`DecisionRecord`]s with unconditional outcome
/// counts.
#[derive(Debug, Clone)]
pub struct DecisionLog {
    records: VecDeque<DecisionRecord>,
    cap: usize,
    dropped: u64,
    counts: [u64; 7],
}

impl Default for DecisionLog {
    fn default() -> DecisionLog {
        DecisionLog::new(DecisionLog::DEFAULT_CAP)
    }
}

impl DecisionLog {
    /// Default record capacity — large enough to hold every attempt of
    /// a 5 000-function swarm run.
    pub const DEFAULT_CAP: usize = 65536;

    /// Creates a log retaining at most `cap` records (counts are
    /// always exact regardless of `cap`).
    pub fn new(cap: usize) -> DecisionLog {
        DecisionLog { records: VecDeque::new(), cap, dropped: 0, counts: [0; 7] }
    }

    /// Appends a record, evicting the oldest when at capacity.
    pub fn push(&mut self, r: DecisionRecord) {
        self.counts[r.outcome.idx()] += 1;
        if self.records.len() == self.cap {
            self.records.pop_front();
            self.dropped += 1;
        }
        if self.cap > 0 {
            self.records.push_back(r);
        } else {
            self.dropped += 1;
        }
    }

    /// Moves every record (and count) from `other` into `self`,
    /// leaving `other` empty.
    pub fn append(&mut self, other: &mut DecisionLog) {
        for i in 0..self.counts.len() {
            self.counts[i] += other.counts[i];
            other.counts[i] = 0;
        }
        self.dropped += other.dropped;
        other.dropped = 0;
        while let Some(r) = other.records.pop_front() {
            if self.records.len() == self.cap {
                self.records.pop_front();
                self.dropped += 1;
            }
            if self.cap > 0 {
                self.records.push_back(r);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether no records are retained.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Records evicted (or refused) due to the capacity bound.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Total attempts recorded (including evicted ones).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Attempts that resolved as `outcome` (including evicted ones).
    pub fn count(&self, outcome: DecisionOutcome) -> u64 {
        self.counts[outcome.idx()]
    }

    /// Iterates retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &DecisionRecord> {
        self.records.iter()
    }

    /// The `n` most recent retained records, oldest first.
    pub fn recent(&self, n: usize) -> Vec<&DecisionRecord> {
        let skip = self.records.len().saturating_sub(n);
        self.records.iter().skip(skip).collect()
    }

    /// Renders every retained record as JSON lines.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.records {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}
