//! Quarantine bookkeeping for the fault-isolated merge pipeline.
//!
//! When the authoritative merge path for a candidate pair fails — a
//! caught panic during alignment or codegen, or a verifier rejection of
//! the merged body — the pipeline does not abort the run. It records the
//! pair here with the failing stage and the active fault seed, skips
//! that merge, and continues the generation. The log is part of
//! [`FmsaStats`](crate::pass::FmsaStats), so callers (and `--json`
//! reports) can see exactly which pairs were sacrificed and replay each
//! one from its recorded seed (see `docs/robustness.md`).
//!
//! Entries are keyed by the *names* of the two functions, not their ids:
//! names are stable across thread counts and runs, which is what makes
//! `summary()` comparable between a 1-thread and an 8-thread run.

use std::fmt::Write as _;

/// The pipeline stage at which a pair was quarantined.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum QuarantineStage {
    /// Sequence alignment panicked.
    Align,
    /// Merged-body code generation panicked.
    Codegen,
    /// The verifier rejected the merged body.
    Verify,
    /// A differential check found the merged body semantically diverging
    /// from the originals (reported by external drivers, e.g. the fuzz
    /// farm — the pipeline itself does not run the interpreter).
    Mismatch,
}

impl QuarantineStage {
    /// Stable lower-case name used in summaries and JSON reports.
    pub fn name(self) -> &'static str {
        match self {
            QuarantineStage::Align => "align",
            QuarantineStage::Codegen => "codegen",
            QuarantineStage::Verify => "verify",
            QuarantineStage::Mismatch => "mismatch",
        }
    }
}

impl std::fmt::Display for QuarantineStage {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// One quarantined pair: which stage failed, for which functions, and
/// enough context to reproduce it.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QuarantineEntry {
    /// The stage that failed.
    pub stage: QuarantineStage,
    /// Name of the first function of the pair.
    pub f1: String,
    /// Name of the second function of the pair.
    pub f2: String,
    /// Human-readable failure description (panic message, first verifier
    /// error, or mismatch detail).
    pub reason: String,
    /// Reproducer seed: the fault-plan seed active when the failure was
    /// recorded (0 when no plan was active — a genuine bug, reproducible
    /// from the input module alone).
    pub seed: u64,
}

/// An append-only record of quarantined pairs.
///
/// `push` deduplicates on `(stage, pair)` — the greedy driver may retry
/// a candidate pair across generations, and one quarantined pair is one
/// incident regardless of how many times it resurfaces.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct QuarantineLog {
    entries: Vec<QuarantineEntry>,
}

impl QuarantineLog {
    /// An empty log.
    pub fn new() -> QuarantineLog {
        QuarantineLog::default()
    }

    /// Records a quarantined pair unless the same `(stage, pair)` is
    /// already present, returning whether a new entry was added. The
    /// pair is order-normalized, so `(a, b)` and `(b, a)` are the same
    /// incident — the greedy driver revisits candidate pairs across
    /// generations, and per-stage counters must count incidents, not
    /// revisits.
    pub fn push(
        &mut self,
        stage: QuarantineStage,
        f1: &str,
        f2: &str,
        reason: String,
        seed: u64,
    ) -> bool {
        let (a, b) = if f1 <= f2 { (f1, f2) } else { (f2, f1) };
        if self.entries.iter().any(|e| e.stage == stage && e.f1 == a && e.f2 == b) {
            return false;
        }
        self.entries.push(QuarantineEntry {
            stage,
            f1: a.to_owned(),
            f2: b.to_owned(),
            reason,
            seed,
        });
        true
    }

    /// Number of quarantined pairs.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether nothing was quarantined.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The recorded entries, in insertion order.
    pub fn entries(&self) -> &[QuarantineEntry] {
        &self.entries
    }

    /// Absorbs another log (e.g. from a later pipeline invocation on the
    /// same module), keeping the dedup invariant.
    pub fn merge(&mut self, other: &QuarantineLog) {
        for e in &other.entries {
            self.push(e.stage, &e.f1, &e.f2, e.reason.clone(), e.seed);
        }
    }

    /// A stable, sorted, one-line-per-entry rendering (`stage f1 f2`
    /// per line). Two runs quarantined the same pairs at the same stages
    /// iff their summaries are string-equal — the cross-thread-count
    /// determinism check used by tests and `experiments faults`.
    pub fn summary(&self) -> String {
        let mut lines: Vec<String> =
            self.entries.iter().map(|e| format!("{} {} {}", e.stage, e.f1, e.f2)).collect();
        lines.sort();
        let mut out = String::new();
        for line in lines {
            let _ = writeln!(out, "{line}");
        }
        out
    }
}

/// Best-effort text of a caught panic payload (`&str` and `String`
/// payloads; anything else becomes a placeholder).
pub fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_owned()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "panic with non-string payload".to_owned()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_dedups_and_normalizes_pair_order() {
        let mut log = QuarantineLog::new();
        log.push(QuarantineStage::Align, "b", "a", "boom".into(), 7);
        log.push(QuarantineStage::Align, "a", "b", "boom again".into(), 7);
        assert_eq!(log.len(), 1);
        assert_eq!(log.entries()[0].f1, "a");
        assert_eq!(log.entries()[0].f2, "b");
        // A different stage for the same pair is a distinct incident.
        log.push(QuarantineStage::Verify, "a", "b", "invalid".into(), 7);
        assert_eq!(log.len(), 2);
    }

    #[test]
    fn summary_is_order_independent() {
        let mut x = QuarantineLog::new();
        x.push(QuarantineStage::Align, "f1", "f2", "p".into(), 1);
        x.push(QuarantineStage::Verify, "g1", "g2", "q".into(), 1);
        let mut y = QuarantineLog::new();
        y.push(QuarantineStage::Verify, "g2", "g1", "other text".into(), 2);
        y.push(QuarantineStage::Align, "f1", "f2", "p".into(), 1);
        assert_eq!(x.summary(), y.summary());
        assert!(x.summary().contains("align f1 f2"));
    }

    #[test]
    fn merge_keeps_dedup() {
        let mut x = QuarantineLog::new();
        x.push(QuarantineStage::Codegen, "a", "b", "p".into(), 1);
        let mut y = QuarantineLog::new();
        y.push(QuarantineStage::Codegen, "b", "a", "p".into(), 1);
        y.push(QuarantineStage::Mismatch, "c", "d", "m".into(), 1);
        x.merge(&y);
        assert_eq!(x.len(), 2);
    }

    #[test]
    fn panic_message_extracts_strings() {
        let caught = std::panic::catch_unwind(|| panic!("literal {}", 42)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "literal 42");
        let caught = std::panic::catch_unwind(|| std::panic::panic_any(17usize)).unwrap_err();
        assert_eq!(panic_message(caught.as_ref()), "panic with non-string payload");
    }
}
