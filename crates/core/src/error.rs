//! The unified library error surface.
//!
//! Until PR 7 the crate boundary leaked three failure shapes: panics out
//! of merge codegen, `String`s from the verifier, and per-crate error
//! structs (`fmsa_ir::parser::ParseError`, `fmsa_wasm::WasmError`). A
//! long-running daemon cannot map that zoo onto HTTP statuses, so the
//! public entry points ([`crate::optimize`], the session API in
//! [`crate::session`], and the meta-crate loaders) now return one
//! [`enum@Error`] implementing [`std::error::Error`].
//!
//! Every variant keeps the machine-readable pieces (parse spans, wasm
//! byte offsets, failing function names, quarantine counts) as fields,
//! and [`Error::stage`]/[`Error::function`] expose the same vocabulary as
//! `fmsa_opt`'s one-line `stage=<s> [function=<f>]` contract from PR 6 —
//! the CLI and the daemon render the *same* classification, one as a
//! structured stderr line, the other as a 4xx/5xx JSON body.
//!
//! The crate does not depend on `fmsa-wasm`, so decode failures cross the
//! boundary through the [`Error::decode`] constructor rather than a
//! `From<WasmError>` impl (the orphan rule forbids it from either side
//! without inverting the dependency graph).

use std::fmt;

/// Any failure the merging stack can report across the library boundary.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum Error {
    /// Textual IR did not parse. `line`/`column` are 1-based, matching
    /// `fmsa_ir::parser::ParseError` spans.
    Parse {
        /// 1-based source line of the failure.
        line: usize,
        /// 1-based source column of the failure.
        column: usize,
        /// What the parser expected or found.
        message: String,
    },
    /// A wasm binary (or other front-end input) failed to decode.
    Decode {
        /// Absolute byte offset of the failure in the input.
        offset: usize,
        /// Decoder diagnosis (section, opcode, truncation...).
        message: String,
    },
    /// The IR verifier rejected a module.
    Verify {
        /// `false`: the *input* module was invalid (caller error).
        /// `true`: the *output* failed re-verification — an internal
        /// merging bug, never the caller's fault.
        output: bool,
        /// The function the first verifier diagnostic names.
        function: String,
        /// The first verifier diagnostic.
        message: String,
    },
    /// Merge codegen failed (a caught panic from behind the fault
    /// boundary, or a driver-level failure).
    Merge {
        /// The function being merged, when known.
        function: Option<String>,
        /// The panic message or failure description.
        message: String,
    },
    /// The run completed but quarantined pairs, and the configuration
    /// asked for that to be an error ([`crate::Config::fail_on_quarantine`]).
    Quarantined {
        /// Number of quarantined pairs.
        pairs: usize,
        /// The deterministic quarantine summary
        /// ([`crate::quarantine::QuarantineLog::summary`]).
        summary: String,
    },
    /// An I/O failure (store persistence, input files).
    Io {
        /// The underlying `std::io` error, rendered.
        message: String,
    },
    /// The request or configuration itself is unusable (bad flag value,
    /// unknown format, oversized input).
    Config {
        /// What was wrong with it.
        message: String,
    },
}

impl Error {
    /// A decode failure at `offset` — the constructor front ends use in
    /// place of the orphan-forbidden `From<WasmError>` impl.
    pub fn decode(offset: usize, message: impl Into<String>) -> Error {
        Error::Decode { offset, message: message.into() }
    }

    /// A verifier rejection; `output` distinguishes invalid input from an
    /// internal post-merge verification failure.
    pub fn verify(output: bool, function: impl Into<String>, message: impl Into<String>) -> Error {
        Error::Verify { output, function: function.into(), message: message.into() }
    }

    /// A configuration/request error.
    pub fn config(message: impl Into<String>) -> Error {
        Error::Config { message: message.into() }
    }

    /// The PR 6 stage vocabulary: the same strings `fmsa_opt` prints in
    /// its `stage=` field, so CLI scripts and daemon clients classify
    /// failures identically.
    pub fn stage(&self) -> &'static str {
        match self {
            Error::Parse { .. } => "parse",
            Error::Decode { .. } => "decode",
            Error::Verify { output: false, .. } => "verify-input",
            Error::Verify { output: true, .. } => "verify-output",
            Error::Merge { .. } => "merge",
            Error::Quarantined { .. } => "quarantine",
            Error::Io { .. } => "read",
            Error::Config { .. } => "config",
        }
    }

    /// The function the failure names, if any (the `function=` field of
    /// the structured error line).
    pub fn function(&self) -> Option<&str> {
        match self {
            Error::Verify { function, .. } => Some(function),
            Error::Merge { function, .. } => function.as_deref(),
            _ => None,
        }
    }

    /// Whether the caller's input caused this (4xx territory for the
    /// daemon) as opposed to an internal failure (5xx).
    pub fn is_caller_fault(&self) -> bool {
        matches!(
            self,
            Error::Parse { .. }
                | Error::Decode { .. }
                | Error::Verify { output: false, .. }
                | Error::Config { .. }
        )
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::Parse { line, column, message } => {
                write!(f, "line {line}:{column}: {message}")
            }
            Error::Decode { offset, message } => {
                write!(f, "at byte {offset:#x}: {message}")
            }
            Error::Verify { output: false, function, message } => {
                write!(f, "input module invalid in @{function}: {message}")
            }
            Error::Verify { output: true, function, message } => {
                write!(f, "internal error — output module invalid in @{function}: {message}")
            }
            Error::Merge { function: Some(name), message } => {
                write!(f, "merge failed in @{name}: {message}")
            }
            Error::Merge { function: None, message } => write!(f, "merge failed: {message}"),
            Error::Quarantined { pairs, summary } => {
                write!(f, "{pairs} pair(s) quarantined: {summary}")
            }
            Error::Io { message } => write!(f, "{message}"),
            Error::Config { message } => write!(f, "{message}"),
        }
    }
}

impl std::error::Error for Error {}

impl From<fmsa_ir::parser::ParseError> for Error {
    fn from(e: fmsa_ir::parser::ParseError) -> Error {
        Error::Parse { line: e.line, column: e.column, message: e.message }
    }
}

impl From<std::io::Error> for Error {
    fn from(e: std::io::Error) -> Error {
        Error::Io { message: e.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stages_match_the_cli_contract() {
        let cases: Vec<(Error, &str)> = vec![
            (Error::Parse { line: 1, column: 2, message: "x".into() }, "parse"),
            (Error::decode(16, "bad section"), "decode"),
            (Error::verify(false, "f", "m"), "verify-input"),
            (Error::verify(true, "f", "m"), "verify-output"),
            (Error::Merge { function: None, message: "m".into() }, "merge"),
            (Error::Quarantined { pairs: 1, summary: "s".into() }, "quarantine"),
            (Error::Io { message: "m".into() }, "read"),
            (Error::config("m"), "config"),
        ];
        for (e, stage) in cases {
            assert_eq!(e.stage(), stage, "{e}");
        }
    }

    #[test]
    fn caller_fault_split_matches_http_mapping() {
        assert!(Error::decode(0, "x").is_caller_fault());
        assert!(Error::verify(false, "f", "m").is_caller_fault());
        assert!(!Error::verify(true, "f", "m").is_caller_fault());
        assert!(!Error::Merge { function: None, message: "m".into() }.is_caller_fault());
    }

    #[test]
    fn parse_error_converts_with_span() {
        let e = fmsa_ir::parser::parse_module("define garbage").unwrap_err();
        let err: Error = e.into();
        match &err {
            Error::Parse { line, .. } => assert_eq!(*line, 1),
            other => panic!("{other:?}"),
        }
        assert!(err.to_string().starts_with("line 1:"), "{err}");
    }

    #[test]
    fn implements_std_error() {
        fn takes_err(_: &dyn std::error::Error) {}
        takes_err(&Error::config("x"));
    }
}
