//! Content-addressed function store with a durable LSH index.
//!
//! The daemon's memory between requests (and restarts): every function
//! that ever passed through a [`crate::session::MergeSession`] is keyed
//! by a [`ContentHash`] of its *canonicalized* body — the printer's
//! textual form with the function's own name replaced by a placeholder,
//! so a renamed copy of the same body hashes identically. Repeat
//! uploads hit the store instead of being treated as new work, and the
//! hit/miss counters are the daemon's index-reuse metric.
//!
//! Alongside the canonical text, each entry stores its MinHash signature
//! (see [`crate::search::minhash`]). Signatures are position-stable and
//! context-free once computed, which makes the LSH index *durable*: on
//! restart the index is rebuilt from persisted signatures with
//! [`LshSearch::insert_signature`] — no module is re-parsed, no
//! fingerprint recomputed. Cross-module candidate search
//! ([`FunctionStore::similar`]) runs over this whole-store index, not
//! over any single upload.
//!
//! # Persistence format
//!
//! `<dir>/functions.store` is an append-only text log:
//!
//! ```text
//! fmsa-store v1
//! fn <hash-hex32> seen=<n> len=<bytes> sig=<u64hex,...> name=<name>
//! <len bytes of canonical text>
//! ```
//!
//! New entries are appended (and flushed) at ingest time, so the store
//! survives an unclean shutdown; a torn tail record — the worst a crash
//! mid-append can leave — is detected and ignored on load. `seen` counts
//! are best-effort (the value at first ingest): they are diagnostics,
//! not inputs to any merge decision.

use crate::error::Error;
use crate::fingerprint::Fingerprint;
use crate::search::minhash::estimated_jaccard;
use crate::search::{LshConfig, LshSearch};
use fmsa_ir::{printer, FuncId, Module};
use std::collections::HashMap;
use std::fmt;
use std::io::Write;
use std::path::{Path, PathBuf};

/// The store file within a store directory.
pub const STORE_FILE: &str = "functions.store";
/// First line of a v1 store file.
const STORE_HEADER: &str = "fmsa-store v1";

/// 128-bit content hash of a canonicalized function body (two
/// differently-seeded FNV-1a-64 lanes — not cryptographic, but
/// collision-safe at any realistic store size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Hashes a byte string.
    pub fn of_bytes(bytes: &[u8]) -> ContentHash {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut lo = 0xcbf2_9ce4_8422_2325u64;
        let mut hi = 0x6c62_272e_07bb_0142u64 ^ (bytes.len() as u64);
        for &b in bytes {
            lo = (lo ^ b as u64).wrapping_mul(PRIME);
            hi = (hi ^ (b as u64).rotate_left(17)).wrapping_mul(PRIME);
        }
        ContentHash(((hi as u128) << 64) | lo as u128)
    }

    /// Parses the 32-digit hex form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// Printer-identifier characters: used to find the end of an `@name`
/// token when normalizing a function's references to itself.
fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$' | '-')
}

/// The canonical text of a function: its printed form with every
/// reference to its *own* name (the `define @name` header, recursive
/// calls) replaced by `@<self>`, so a byte-identical body under a
/// different name produces the same [`ContentHash`]. `<` never occurs in
/// printed identifiers, so the placeholder cannot collide.
pub fn canonical_function_text(module: &Module, func: FuncId) -> String {
    let f = module.func(func);
    let text = printer::print_function(module, f);
    let needle = format!("@{}", f.name);
    let mut out = String::with_capacity(text.len());
    let mut rest = text.as_str();
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        out.push_str(&rest[..pos]);
        if after.chars().next().is_none_or(|c| !is_ident_char(c)) {
            out.push_str("@<self>");
        } else {
            // A longer name that merely starts with ours — keep it.
            out.push_str(&needle);
        }
        rest = after;
    }
    out.push_str(rest);
    out
}

/// One stored function.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Content hash of the canonical text.
    pub hash: ContentHash,
    /// The name the function had when first ingested (later uploads may
    /// use different names for the same body).
    pub name: String,
    /// How many times this body has been ingested (first ingest = 1).
    pub seen: u64,
    /// The canonical text itself.
    pub text: String,
    /// MinHash signature, the durable half of the LSH index.
    signature: Vec<u64>,
}

/// What one [`FunctionStore::ingest_module`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Defined (non-declaration) functions examined.
    pub functions: usize,
    /// Functions whose body was already stored.
    pub hits: usize,
    /// Functions stored for the first time.
    pub misses: usize,
}

/// A similar-function search result from [`FunctionStore::similar`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarEntry {
    /// Content hash of the similar stored function.
    pub hash: ContentHash,
    /// Its first-seen name.
    pub name: String,
    /// MinHash-estimated Jaccard similarity to the query, in `[0, 1]`.
    pub score: f64,
}

/// Content-addressed store of canonicalized function bodies with an
/// incrementally-maintained, disk-durable LSH index over all of them.
#[derive(Debug)]
pub struct FunctionStore {
    dir: Option<PathBuf>,
    entries: Vec<StoreEntry>,
    by_hash: HashMap<u128, usize>,
    index: LshSearch,
    hits: u64,
    misses: u64,
}

impl FunctionStore {
    /// An empty, purely in-memory store (nothing persists).
    pub fn in_memory() -> FunctionStore {
        FunctionStore {
            dir: None,
            entries: Vec::new(),
            by_hash: HashMap::new(),
            index: LshSearch::new(LshConfig::default()),
            hits: 0,
            misses: 0,
        }
    }

    /// Opens (or creates) a persistent store rooted at `dir`, reloading
    /// any previously-persisted entries and rebuilding the LSH index
    /// from their stored signatures.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FunctionStore, Error> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut store = FunctionStore::in_memory();
        store.dir = Some(dir.clone());
        let path = dir.join(STORE_FILE);
        if path.exists() {
            let raw = std::fs::read(&path)?;
            store.load(&raw);
        }
        Ok(store)
    }

    /// The store directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Number of distinct function bodies stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no functions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ingests that hit an existing entry, over the store's lifetime in
    /// this process (resets on restart; the *entries* persist, the
    /// counters are per-run telemetry).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Ingests that created a new entry.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// `hits / (hits + misses)`, the index-reuse rate; 0 when nothing
    /// was ingested yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// Iterates stored entries in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// Looks up a stored entry by content hash.
    pub fn get(&self, hash: ContentHash) -> Option<&StoreEntry> {
        self.by_hash.get(&hash.0).map(|&i| &self.entries[i])
    }

    /// Hashes every defined function of `module` into the store:
    /// already-known bodies bump `seen` and count as hits, new bodies
    /// are fingerprinted, indexed, appended to disk (when persistent),
    /// and count as misses.
    pub fn ingest_module(&mut self, module: &Module) -> Result<IngestStats, Error> {
        let mut stats = IngestStats::default();
        for f in module.func_ids() {
            if module.func(f).is_declaration() {
                continue;
            }
            stats.functions += 1;
            let text = canonical_function_text(module, f);
            let hash = ContentHash::of_bytes(text.as_bytes());
            if let Some(&i) = self.by_hash.get(&hash.0) {
                self.entries[i].seen += 1;
                stats.hits += 1;
                self.hits += 1;
            } else {
                let fp = Fingerprint::of(module, f);
                let signature = self.index.signature_for(&fp);
                let entry = StoreEntry {
                    hash,
                    name: module.func(f).name.clone(),
                    seen: 1,
                    text,
                    signature,
                };
                self.append_to_disk(&entry)?;
                self.insert_entry(entry);
                stats.misses += 1;
                self.misses += 1;
            }
        }
        Ok(stats)
    }

    /// Records `n` hits without re-hashing anything — used by the
    /// session's whole-response cache, where a byte-identical re-upload
    /// is known to consist entirely of stored functions.
    pub fn note_replayed_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// The `k` most similar stored functions to the entry at `hash`
    /// (excluding itself), by MinHash signature agreement over the
    /// whole-store LSH index. This is the cross-module candidate search:
    /// the index spans every module ever ingested, not one upload.
    pub fn similar(&self, hash: ContentHash, k: usize) -> Vec<SimilarEntry> {
        let Some(&i) = self.by_hash.get(&hash.0) else {
            return Vec::new();
        };
        let subject = &self.entries[i];
        let mut scored: Vec<SimilarEntry> = self
            .index
            .shortlist(FuncId::from_index(i))
            .into_iter()
            .map(|f| {
                let e = &self.entries[f.index()];
                SimilarEntry {
                    hash: e.hash,
                    name: e.name.clone(),
                    score: estimated_jaccard(&subject.signature, &e.signature),
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.hash.cmp(&b.hash))
        });
        scored.truncate(k);
        scored
    }

    fn insert_entry(&mut self, entry: StoreEntry) {
        let id = FuncId::from_index(self.entries.len());
        self.index.insert_signature(id, entry.signature.clone());
        self.by_hash.insert(entry.hash.0, self.entries.len());
        self.entries.push(entry);
    }

    fn append_to_disk(&mut self, entry: &StoreEntry) -> Result<(), Error> {
        let Some(dir) = &self.dir else {
            return Ok(());
        };
        let path = dir.join(STORE_FILE);
        let fresh = !path.exists();
        let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
        let mut rec = String::new();
        if fresh {
            rec.push_str(STORE_HEADER);
            rec.push('\n');
        }
        let sig: Vec<String> = entry.signature.iter().map(|x| format!("{x:x}")).collect();
        rec.push_str(&format!(
            "fn {} seen={} len={} sig={} name={}\n",
            entry.hash,
            entry.seen,
            entry.text.len(),
            sig.join(","),
            entry.name
        ));
        rec.push_str(&entry.text);
        rec.push('\n');
        file.write_all(rec.as_bytes())?;
        file.flush()?;
        Ok(())
    }

    /// Loads entries from a raw store file, stopping (without error) at
    /// the first malformed record — the possible torn tail of a crash
    /// mid-append.
    fn load(&mut self, raw: &[u8]) {
        let Ok(text) = std::str::from_utf8(raw) else {
            return;
        };
        let Some(rest) = text.strip_prefix(STORE_HEADER).and_then(|r| r.strip_prefix('\n')) else {
            return;
        };
        let mut cursor = rest;
        while !cursor.is_empty() {
            let Some(entry_and_rest) = parse_record(cursor) else {
                break;
            };
            let (entry, rest) = entry_and_rest;
            cursor = rest;
            if !self.by_hash.contains_key(&entry.hash.0) {
                self.insert_entry(entry);
            }
        }
    }
}

/// Parses one persisted record off the front of `cursor`; `None` on a
/// malformed or truncated record.
fn parse_record(cursor: &str) -> Option<(StoreEntry, &str)> {
    let (header, body) = cursor.split_once('\n')?;
    let fields = header.strip_prefix("fn ")?;
    let (hash_s, fields) = fields.split_once(' ')?;
    let hash = ContentHash::from_hex(hash_s)?;
    let (seen_s, fields) = fields.split_once(' ')?;
    let seen: u64 = seen_s.strip_prefix("seen=")?.parse().ok()?;
    let (len_s, fields) = fields.split_once(' ')?;
    let len: usize = len_s.strip_prefix("len=")?.parse().ok()?;
    let (sig_s, name_s) = fields.split_once(' ')?;
    let sig_s = sig_s.strip_prefix("sig=")?;
    let name = name_s.strip_prefix("name=")?.to_owned();
    let mut signature = Vec::new();
    for part in sig_s.split(',') {
        signature.push(u64::from_str_radix(part, 16).ok()?);
    }
    if body.len() < len + 1 || !body.is_char_boundary(len) {
        return None; // torn tail
    }
    let text = body[..len].to_owned();
    let rest = body[len..].strip_prefix('\n')?;
    // The stored hash must match the stored text — a mismatch means the
    // record (not just the tail) is corrupt, so stop here too.
    if ContentHash::of_bytes(text.as_bytes()) != hash {
        return None;
    }
    Some((StoreEntry { hash, name, seen, text, signature }, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fmsa-store-test-{}-{tag}-{n}", std::process::id()))
    }

    fn module_with(names: &[(&str, i32)]) -> Module {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        for &(name, c) in names {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..6 {
                v = b.add(v, b.const_i32(c + j));
            }
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn canonical_text_is_name_independent() {
        let m = module_with(&[("alpha", 1), ("beta_longer_name", 1)]);
        let ids = m.func_ids();
        let ta = canonical_function_text(&m, ids[0]);
        let tb = canonical_function_text(&m, ids[1]);
        assert_eq!(ta, tb);
        assert!(ta.contains("@<self>"), "{ta}");
        assert!(!ta.contains("alpha"));
    }

    #[test]
    fn prefix_names_do_not_over_normalize() {
        // A function `f` calling `ff` must not rewrite `@ff` to
        // `@<self>f`.
        let mut m = module_with(&[("ff", 1)]);
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let callee = m.func_ids()[0];
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let r = b.call(callee, vec![Value::Param(0)]);
        b.ret(Some(r));
        let text = canonical_function_text(&m, f);
        assert!(text.contains("@ff"), "{text}");
        assert!(text.contains("@<self>"), "{text}");
    }

    #[test]
    fn ingest_dedupes_and_counts() {
        let mut store = FunctionStore::in_memory();
        let m = module_with(&[("a", 1), ("b", 1), ("c", 9)]);
        let s1 = store.ingest_module(&m).unwrap();
        // a and b share a body (name-normalized), c differs.
        assert_eq!(s1.functions, 3);
        assert_eq!(s1.misses, 2);
        assert_eq!(s1.hits, 1);
        assert_eq!(store.len(), 2);
        let s2 = store.ingest_module(&m).unwrap();
        assert_eq!(s2.hits, 3);
        assert_eq!(s2.misses, 0);
        assert!(store.hit_rate() > 0.5);
    }

    #[test]
    fn persistence_survives_reopen() {
        let dir = temp_dir("reopen");
        let m = module_with(&[("a", 1), ("c", 9)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            let s = store.ingest_module(&m).unwrap();
            assert_eq!(s.misses, 2);
        }
        let mut store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits(), 0, "counters are per-run");
        let s = store.ingest_module(&m).unwrap();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert!(store.hit_rate() > 0.99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_ignored() {
        let dir = temp_dir("torn");
        let m = module_with(&[("a", 1), ("c", 9)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            store.ingest_module(&m).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let path = dir.join(STORE_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let cut = raw.len() - 17;
        raw.truncate(cut);
        std::fs::write(&path, &raw).unwrap();
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "intact prefix loads, torn tail dropped");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn similar_finds_near_clones_across_uploads() {
        let mut store = FunctionStore::in_memory();
        // Two separate "modules" (uploads) with similar bodies and one
        // very different body.
        store.ingest_module(&module_with(&[("a", 1)])).unwrap();
        store.ingest_module(&module_with(&[("b", 2)])).unwrap();
        let mut far = Module::new("far");
        let i32t = far.types.i32();
        let fn_ty = far.types.func(i32t, vec![i32t]);
        let f = far.create_function("far", fn_ty);
        let mut b = FuncBuilder::new(&mut far, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..9 {
            v = b.mul(v, b.const_i32(3));
            v = b.xor(v, b.const_i32(5));
        }
        b.ret(Some(v));
        store.ingest_module(&far).unwrap();
        let subject = store.entries().next().unwrap().hash;
        let similar = store.similar(subject, 5);
        // The near-clone from the *other upload* must rank first.
        assert!(!similar.is_empty(), "cross-upload clone should collide in LSH");
        assert_eq!(similar[0].name, "b");
        assert!(similar[0].score > 0.8, "{:?}", similar[0]);
    }

    #[test]
    fn hash_hex_round_trips() {
        let h = ContentHash::of_bytes(b"some function body");
        assert_eq!(ContentHash::from_hex(&h.to_string()), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
    }
}
