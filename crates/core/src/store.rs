//! Content-addressed function store with a durable LSH index and a
//! crash-consistent write-ahead log.
//!
//! The daemon's memory between requests (and restarts): every function
//! that ever passed through a [`crate::session::MergeSession`] is keyed
//! by a [`ContentHash`] of its *canonicalized* body — the printer's
//! textual form with the function's own name replaced by a placeholder,
//! so a renamed copy of the same body hashes identically. Repeat
//! uploads hit the store instead of being treated as new work, and the
//! hit/miss counters are the daemon's index-reuse metric.
//!
//! Alongside the canonical text, each entry stores its MinHash signature
//! (see [`crate::search::minhash`]). Signatures are position-stable and
//! context-free once computed, which makes the LSH index *durable*: on
//! restart the index is rebuilt from persisted signatures with
//! [`LshSearch::insert_signature`] — no module is re-parsed, no
//! fingerprint recomputed. Cross-module candidate search
//! ([`FunctionStore::similar`]) runs over this whole-store index, not
//! over any single upload.
//!
//! # Persistence format (v2)
//!
//! `<dir>/functions.store` is an append-only write-ahead log of
//! checksummed, length-framed records:
//!
//! ```text
//! fmsa-store v2
//! R <payload-len> <crc32-hex8>
//! <payload bytes>
//! ```
//!
//! The CRC32 (IEEE) covers exactly the payload bytes. Two payload kinds
//! exist:
//!
//! * `fn <hash-hex32> seen=<n> len=<bytes> sig=<u64hex,...> name=<name>`
//!   followed by `len` bytes of canonical text — a new entry;
//! * `seen <hash-hex32> +<delta>` — a durable repeat-ingest bump for an
//!   existing entry (folded into its `seen` count on load and on
//!   compaction).
//!
//! Recovery ([`FunctionStore::open`]) scans to the last record whose
//! frame parses and whose checksum matches — the longest valid prefix —
//! then truncates the log there so later appends land on a clean tail.
//! Whatever was dropped is reported in [`RecoveryStats`]. A legacy
//! `fmsa-store v1` log (no checksums) still loads, read-only; the first
//! compaction — explicit, automatic, or forced by the first append —
//! rewrites it as v2.
//!
//! Durability is governed by [`FsyncPolicy`]; compaction
//! ([`FunctionStore::compact`]) rewrites the live records to
//! `functions.store.tmp` and atomically renames it over the log, so a
//! crash mid-compaction leaves either the old or the new file, never a
//! hybrid. All three I/O steps (write, fsync, rename) consult the
//! store's [`FaultPlan`] so tests and `experiments chaos` can inject
//! deterministic I/O failures.

use crate::error::Error;
use crate::faults::{FaultPlan, FaultSite, INJECTED_PANIC_PREFIX};
use crate::fingerprint::Fingerprint;
use crate::search::minhash::estimated_jaccard;
use crate::search::{LshConfig, LshSearch};
use fmsa_ir::{printer, FuncId, Module};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// The store file within a store directory.
pub const STORE_FILE: &str = "functions.store";
/// Compaction scratch file; renamed over [`STORE_FILE`] on success,
/// deleted on failure, ignored (and removed) if found at open time.
pub const STORE_TMP_FILE: &str = "functions.store.tmp";
/// First line of a v1 store file.
const STORE_HEADER_V1: &str = "fmsa-store v1";
/// First line of a v2 store file.
const STORE_HEADER_V2: &str = "fmsa-store v2";

/// 128-bit content hash of a canonicalized function body (two
/// differently-seeded FNV-1a-64 lanes — not cryptographic, but
/// collision-safe at any realistic store size).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ContentHash(pub u128);

impl ContentHash {
    /// Hashes a byte string.
    pub fn of_bytes(bytes: &[u8]) -> ContentHash {
        const PRIME: u64 = 0x100_0000_01b3;
        let mut lo = 0xcbf2_9ce4_8422_2325u64;
        let mut hi = 0x6c62_272e_07bb_0142u64 ^ (bytes.len() as u64);
        for &b in bytes {
            lo = (lo ^ b as u64).wrapping_mul(PRIME);
            hi = (hi ^ (b as u64).rotate_left(17)).wrapping_mul(PRIME);
        }
        ContentHash(((hi as u128) << 64) | lo as u128)
    }

    /// Parses the 32-digit hex form produced by `Display`.
    pub fn from_hex(s: &str) -> Option<ContentHash> {
        if s.len() != 32 {
            return None;
        }
        u128::from_str_radix(s, 16).ok().map(ContentHash)
    }
}

impl fmt::Display for ContentHash {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:032x}", self.0)
    }
}

/// CRC32 (IEEE 802.3 polynomial, reflected) over `bytes` — the per-record
/// checksum of the v2 store format. Public so recovery tooling and the
/// corruption property tests can frame records independently.
pub fn crc32(bytes: &[u8]) -> u32 {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut t = [0u32; 256];
        for (i, e) in t.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 { 0xEDB8_8320 ^ (c >> 1) } else { c >> 1 };
            }
            *e = c;
        }
        t
    });
    let mut c = !0u32;
    for &b in bytes {
        c = table[((c ^ b as u32) & 0xFF) as usize] ^ (c >> 8);
    }
    !c
}

/// Frames one payload as a v2 record: `R <len> <crc32:08x>\n<payload>\n`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = format!("R {} {:08x}\n", payload.len(), crc32(payload)).into_bytes();
    out.extend_from_slice(payload);
    out.push(b'\n');
    out
}

/// When the store calls `fsync` on its log.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync (the OS flushes on its own schedule); a power loss
    /// can drop acknowledged ingests, a process crash cannot (appends
    /// are still write-through).
    Never,
    /// Fsync once at the end of every ingest that wrote anything — the
    /// default: an acknowledged ingest survives power loss.
    PerIngest,
    /// Fsync at most once per interval; bounded-loss middle ground for
    /// high-throughput ingest.
    Interval(Duration),
}

impl FsyncPolicy {
    /// Parses the `--fsync` flag grammar: `never`, `per-ingest`, or
    /// `interval:SECS`.
    pub fn parse(s: &str) -> Result<FsyncPolicy, String> {
        match s {
            "never" => Ok(FsyncPolicy::Never),
            "per-ingest" => Ok(FsyncPolicy::PerIngest),
            other => match other.strip_prefix("interval:") {
                Some(secs) => secs
                    .parse::<u64>()
                    .map(|n| FsyncPolicy::Interval(Duration::from_secs(n.max(1))))
                    .map_err(|_| format!("bad interval seconds {secs:?}")),
                None => Err(format!(
                    "unknown fsync policy {other:?} (expected never | per-ingest | interval:SECS)"
                )),
            },
        }
    }
}

impl fmt::Display for FsyncPolicy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FsyncPolicy::Never => f.write_str("never"),
            FsyncPolicy::PerIngest => f.write_str("per-ingest"),
            FsyncPolicy::Interval(d) => write!(f, "interval:{}", d.as_secs()),
        }
    }
}

/// Durability and compaction knobs for a persistent store.
#[derive(Debug, Clone)]
pub struct StoreOptions {
    /// When to fsync the log.
    pub fsync: FsyncPolicy,
    /// Deterministic I/O fault injection plan (store sites only).
    pub faults: FaultPlan,
    /// Whether ingest triggers compaction when the dead-bytes ratio
    /// crosses `compact_dead_ratio`.
    pub auto_compact: bool,
    /// Dead-bytes fraction of the log that triggers auto-compaction.
    pub compact_dead_ratio: f64,
    /// Minimum log size before auto-compaction considers firing.
    pub compact_min_bytes: u64,
}

impl Default for StoreOptions {
    fn default() -> Self {
        StoreOptions {
            fsync: FsyncPolicy::PerIngest,
            faults: FaultPlan::disabled(),
            auto_compact: true,
            compact_dead_ratio: 0.5,
            compact_min_bytes: 16 * 1024,
        }
    }
}

/// What [`FunctionStore::open`] found (and dropped) while recovering the
/// log — surfaced by the daemon's `/v1/stats`.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryStats {
    /// Entries recovered from the log.
    pub entries: usize,
    /// `seen` bump records folded into recovered entries.
    pub seen_records: usize,
    /// Records after the valid prefix that were skipped as corrupt or
    /// torn (counted by their frame headers; a torn partial record
    /// counts as one).
    pub skipped_records: usize,
    /// Bytes past the valid prefix, dropped (and truncated) at open.
    pub bytes_dropped: u64,
    /// Whether the log was a legacy v1 file (loads read-only; the first
    /// compaction migrates it to v2).
    pub from_v1: bool,
}

/// What one [`FunctionStore::compact`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CompactStats {
    /// Live entries written to the compacted log.
    pub entries: usize,
    /// Log size before compaction.
    pub bytes_before: u64,
    /// Log size after compaction.
    pub bytes_after: u64,
}

/// One stored function.
#[derive(Debug, Clone)]
pub struct StoreEntry {
    /// Content hash of the canonical text.
    pub hash: ContentHash,
    /// The name the function had when first ingested (later uploads may
    /// use different names for the same body).
    pub name: String,
    /// How many times this body has been ingested (first ingest = 1).
    pub seen: u64,
    /// The canonical text itself.
    pub text: String,
    /// MinHash signature, the durable half of the LSH index.
    signature: Vec<u64>,
}

impl StoreEntry {
    /// The persisted MinHash signature (for rebuilding an LSH index
    /// without re-fingerprinting).
    pub fn signature(&self) -> &[u64] {
        &self.signature
    }
}

/// What one [`FunctionStore::ingest_module`] call did.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IngestStats {
    /// Defined (non-declaration) functions examined.
    pub functions: usize,
    /// Functions whose body was already stored.
    pub hits: usize,
    /// Functions stored for the first time.
    pub misses: usize,
}

/// A similar-function search result from [`FunctionStore::similar`].
#[derive(Debug, Clone, PartialEq)]
pub struct SimilarEntry {
    /// Content hash of the similar stored function.
    pub hash: ContentHash,
    /// Its first-seen name.
    pub name: String,
    /// MinHash-estimated Jaccard similarity to the query, in `[0, 1]`.
    pub score: f64,
}

/// Printer-identifier characters: used to find the end of an `@name`
/// token when normalizing a function's references to itself.
fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '$' | '-')
}

/// The canonical text of a function: its printed form with every
/// reference to its *own* name (the `define @name` header, recursive
/// calls) replaced by `@<self>`, so a byte-identical body under a
/// different name produces the same [`ContentHash`]. `<` never occurs in
/// printed identifiers, so the placeholder cannot collide.
pub fn canonical_function_text(module: &Module, func: FuncId) -> String {
    let f = module.func(func);
    let text = printer::print_function(module, f);
    let needle = format!("@{}", f.name);
    let mut out = String::with_capacity(text.len());
    let mut rest = text.as_str();
    while let Some(pos) = rest.find(&needle) {
        let after = &rest[pos + needle.len()..];
        out.push_str(&rest[..pos]);
        if after.chars().next().is_none_or(|c| !is_ident_char(c)) {
            out.push_str("@<self>");
        } else {
            // A longer name that merely starts with ours — keep it.
            out.push_str(&needle);
        }
        rest = after;
    }
    out.push_str(rest);
    out
}

/// Content hashes of every defined function in `module`, in definition
/// order (duplicates included) — exactly what
/// [`FunctionStore::ingest_module`] would key them by. The session's
/// response cache records these so a cached replay can durably bump
/// `seen` via [`FunctionStore::bump_seen`].
pub fn module_hashes(module: &Module) -> Vec<ContentHash> {
    let mut hashes = Vec::new();
    for f in module.func_ids() {
        if module.func(f).is_declaration() {
            continue;
        }
        hashes.push(ContentHash::of_bytes(canonical_function_text(module, f).as_bytes()));
    }
    hashes
}

/// Content-addressed store of canonicalized function bodies with an
/// incrementally-maintained, disk-durable LSH index over all of them.
#[derive(Debug)]
pub struct FunctionStore {
    dir: Option<PathBuf>,
    entries: Vec<StoreEntry>,
    by_hash: HashMap<u128, usize>,
    index: LshSearch,
    hits: u64,
    misses: u64,
    // --- persistence state (all zero/inert for in-memory stores) ---
    file: Option<File>,
    format_v1: bool,
    opts: StoreOptions,
    last_sync: Instant,
    dirty: bool,
    ops: u64,
    total_bytes: u64,
    dead_bytes: u64,
    compactions: u64,
    compact_failures: u64,
    recovery: RecoveryStats,
}

impl FunctionStore {
    /// An empty, purely in-memory store (nothing persists).
    pub fn in_memory() -> FunctionStore {
        FunctionStore {
            dir: None,
            entries: Vec::new(),
            by_hash: HashMap::new(),
            index: LshSearch::new(LshConfig::default()),
            hits: 0,
            misses: 0,
            file: None,
            format_v1: false,
            opts: StoreOptions::default(),
            last_sync: Instant::now(),
            dirty: false,
            ops: 0,
            total_bytes: 0,
            dead_bytes: 0,
            compactions: 0,
            compact_failures: 0,
            recovery: RecoveryStats::default(),
        }
    }

    /// Opens (or creates) a persistent store rooted at `dir` with default
    /// [`StoreOptions`], reloading any previously-persisted entries and
    /// rebuilding the LSH index from their stored signatures.
    pub fn open(dir: impl Into<PathBuf>) -> Result<FunctionStore, Error> {
        FunctionStore::open_with(dir, StoreOptions::default())
    }

    /// [`FunctionStore::open`] with explicit durability/compaction/fault
    /// options. Recovery scans the log to the last checksum-valid record
    /// and truncates whatever follows (reported in
    /// [`FunctionStore::recovery`]); a stale compaction scratch file is
    /// removed — the rename that would have published it never happened,
    /// so the old log is authoritative.
    pub fn open_with(dir: impl Into<PathBuf>, opts: StoreOptions) -> Result<FunctionStore, Error> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let _ = std::fs::remove_file(dir.join(STORE_TMP_FILE));
        let mut store = FunctionStore::in_memory();
        store.opts = opts;
        store.dir = Some(dir.clone());
        let path = dir.join(STORE_FILE);
        if path.exists() {
            let raw = std::fs::read(&path)?;
            let valid_len = store.load(&raw);
            if !store.format_v1 && valid_len < raw.len() {
                // Truncate to the valid prefix so later appends land on
                // a clean tail instead of hiding behind corrupt bytes.
                let f = std::fs::OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid_len as u64)?;
                f.sync_all()?;
            }
        }
        Ok(store)
    }

    /// The store directory, if persistent.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// Number of distinct function bodies stored.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the store holds no functions.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Ingests that hit an existing entry, over the store's lifetime in
    /// this process (resets on restart; the *entries* persist, the
    /// counters are per-run telemetry).
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Ingests that created a new entry.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// `hits / (hits + misses)`, the index-reuse rate; 0 when nothing
    /// was ingested yet.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }

    /// What recovery found (and dropped) when this store was opened.
    pub fn recovery(&self) -> &RecoveryStats {
        &self.recovery
    }

    /// Current log size in bytes (0 for in-memory stores).
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Bytes in the log that compaction would reclaim (`seen` bump
    /// records, dropped tails of a v1 log).
    pub fn dead_bytes(&self) -> u64 {
        self.dead_bytes
    }

    /// `dead_bytes / total_bytes` (0 for an empty log).
    pub fn dead_ratio(&self) -> f64 {
        if self.total_bytes == 0 {
            0.0
        } else {
            self.dead_bytes as f64 / self.total_bytes as f64
        }
    }

    /// Compactions completed since open.
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Auto-compactions that failed (explicit [`FunctionStore::compact`]
    /// failures propagate to the caller instead).
    pub fn compact_failures(&self) -> u64 {
        self.compact_failures
    }

    /// The log format version this store is currently reading/writing:
    /// 1 only for a legacy log that has not yet been compacted.
    pub fn format_version(&self) -> u32 {
        if self.format_v1 {
            1
        } else {
            2
        }
    }

    /// Replaces the store's fault-injection plan (only the `store-*`
    /// sites are consulted).
    pub fn set_faults(&mut self, faults: FaultPlan) {
        self.opts.faults = faults;
    }

    /// The active fsync policy.
    pub fn fsync_policy(&self) -> FsyncPolicy {
        self.opts.fsync
    }

    /// Iterates stored entries in insertion order.
    pub fn entries(&self) -> impl Iterator<Item = &StoreEntry> {
        self.entries.iter()
    }

    /// Looks up a stored entry by content hash.
    pub fn get(&self, hash: ContentHash) -> Option<&StoreEntry> {
        self.by_hash.get(&hash.0).map(|&i| &self.entries[i])
    }

    /// Hashes every defined function of `module` into the store:
    /// already-known bodies bump `seen` (durably, via a WAL bump record)
    /// and count as hits, new bodies are fingerprinted, indexed,
    /// appended to disk (when persistent), and count as misses. The
    /// append happens *before* the in-memory insert, so an I/O failure
    /// leaves memory and disk agreeing (the entry is in neither).
    pub fn ingest_module(&mut self, module: &Module) -> Result<IngestStats, Error> {
        let mut stats = IngestStats::default();
        let mut bumps: Vec<(ContentHash, u64)> = Vec::new();
        for f in module.func_ids() {
            if module.func(f).is_declaration() {
                continue;
            }
            stats.functions += 1;
            let text = canonical_function_text(module, f);
            let hash = ContentHash::of_bytes(text.as_bytes());
            if self.by_hash.contains_key(&hash.0) {
                match bumps.iter_mut().find(|(h, _)| *h == hash) {
                    Some((_, n)) => *n += 1,
                    None => bumps.push((hash, 1)),
                }
                stats.hits += 1;
                self.hits += 1;
            } else {
                let fp = Fingerprint::of(module, f);
                let signature = self.index.signature_for(&fp);
                let entry = StoreEntry {
                    hash,
                    name: module.func(f).name.clone(),
                    seen: 1,
                    text,
                    signature,
                };
                self.append_record(&entry_payload(&entry), false)?;
                self.insert_entry(entry);
                stats.misses += 1;
                self.misses += 1;
            }
        }
        // Durable seen bumps: one record per distinct repeated hash.
        // Memory is only bumped once the record is on disk, so a failed
        // append under-counts rather than diverging from the log.
        for (hash, delta) in bumps {
            self.append_record(format!("seen {hash} +{delta}").as_bytes(), true)?;
            if let Some(&i) = self.by_hash.get(&hash.0) {
                self.entries[i].seen += delta;
            }
        }
        self.sync_per_policy()?;
        self.maybe_auto_compact();
        Ok(stats)
    }

    /// Records `n` hits without re-hashing anything — used by the
    /// session's whole-response cache, where a byte-identical re-upload
    /// is known to consist entirely of stored functions.
    pub fn note_replayed_hits(&mut self, n: u64) {
        self.hits += n;
    }

    /// Durably bumps `seen` for already-stored entries — the
    /// response-cache replay path, whose uploads never reach
    /// [`FunctionStore::ingest_module`] and previously left repeat
    /// counts at their first-ingest values. Every hash counts as a
    /// store hit; unknown hashes are ignored. Memory is only bumped
    /// once the record is on disk, so a failed append under-counts
    /// rather than diverging from the log.
    pub fn bump_seen(&mut self, hashes: &[ContentHash]) -> Result<(), Error> {
        let mut bumps: Vec<(ContentHash, u64)> = Vec::new();
        for &hash in hashes {
            if !self.by_hash.contains_key(&hash.0) {
                continue;
            }
            self.hits += 1;
            match bumps.iter_mut().find(|(h, _)| *h == hash) {
                Some((_, n)) => *n += 1,
                None => bumps.push((hash, 1)),
            }
        }
        if bumps.is_empty() {
            return Ok(());
        }
        for (hash, delta) in bumps {
            self.append_record(format!("seen {hash} +{delta}").as_bytes(), true)?;
            if let Some(&i) = self.by_hash.get(&hash.0) {
                self.entries[i].seen += delta;
            }
        }
        self.sync_per_policy()?;
        self.maybe_auto_compact();
        Ok(())
    }

    /// The `k` most similar stored functions to the entry at `hash`
    /// (excluding itself), by MinHash signature agreement over the
    /// whole-store LSH index. This is the cross-module candidate search:
    /// the index spans every module ever ingested, not one upload.
    pub fn similar(&self, hash: ContentHash, k: usize) -> Vec<SimilarEntry> {
        let Some(&i) = self.by_hash.get(&hash.0) else {
            return Vec::new();
        };
        let subject = &self.entries[i];
        let mut scored: Vec<SimilarEntry> = self
            .index
            .shortlist(FuncId::from_index(i))
            .into_iter()
            .map(|f| {
                let e = &self.entries[f.index()];
                SimilarEntry {
                    hash: e.hash,
                    name: e.name.clone(),
                    score: estimated_jaccard(&subject.signature, &e.signature),
                }
            })
            .collect();
        scored.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.hash.cmp(&b.hash))
        });
        scored.truncate(k);
        scored
    }

    /// Rewrites the log to exactly the live entries (current `seen`
    /// counts folded in, bump records dropped) via
    /// `functions.store.tmp` + atomic rename. A crash or injected fault
    /// at any point leaves either the old or the new log. Also the v1 →
    /// v2 migration path: the compacted log is always v2.
    pub fn compact(&mut self) -> Result<CompactStats, Error> {
        let Some(dir) = self.dir.clone() else {
            return Ok(CompactStats::default());
        };
        let bytes_before = self.total_bytes;
        let mut buf = format!("{STORE_HEADER_V2}\n").into_bytes();
        for e in &self.entries {
            buf.extend_from_slice(&frame(&entry_payload(e)));
        }
        let tmp = dir.join(STORE_TMP_FILE);
        let path = dir.join(STORE_FILE);
        if let Err(e) = self.write_snapshot(&tmp, &path, &buf) {
            let _ = std::fs::remove_file(&tmp);
            return Err(e);
        }
        // Best-effort directory sync so the rename itself is durable.
        if let Ok(d) = File::open(&dir) {
            let _ = d.sync_all();
        }
        self.file = Some(std::fs::OpenOptions::new().append(true).open(&path)?);
        self.format_v1 = false;
        self.total_bytes = buf.len() as u64;
        self.dead_bytes = 0;
        self.dirty = false;
        self.last_sync = Instant::now();
        self.compactions += 1;
        Ok(CompactStats {
            entries: self.entries.len(),
            bytes_before,
            bytes_after: self.total_bytes,
        })
    }

    /// Fsyncs any unsynced appends (used by graceful shutdown and by
    /// `Interval` policy users that want a final durability point).
    pub fn flush(&mut self) -> Result<(), Error> {
        if self.dirty {
            self.sync_now()?;
        }
        Ok(())
    }

    // ---- internals ----

    fn insert_entry(&mut self, entry: StoreEntry) {
        let id = FuncId::from_index(self.entries.len());
        self.index.insert_signature(id, entry.signature.clone());
        self.by_hash.insert(entry.hash.0, self.entries.len());
        self.entries.push(entry);
    }

    fn injected(&self, site: FaultSite) -> Error {
        Error::from(std::io::Error::other(format!(
            "{INJECTED_PANIC_PREFIX} {} at store op {}",
            site.name(),
            self.ops
        )))
    }

    /// Appends one framed record, migrating a v1 log to v2 first (via
    /// compaction) if needed. `dead` marks records that compaction will
    /// reclaim (seen bumps). Write-ahead: callers insert into memory
    /// only after this succeeds.
    fn append_record(&mut self, payload: &[u8], dead: bool) -> Result<(), Error> {
        if self.dir.is_none() {
            return Ok(());
        }
        if self.format_v1 {
            // A v1 log is read-only; the first write forces the
            // migration compaction that rewrites it as v2.
            self.compact()?;
        }
        let framed = frame(payload);
        self.ops += 1;
        if self.opts.faults.fires(FaultSite::StoreWrite, "store", &self.ops.to_string()) {
            return Err(self.injected(FaultSite::StoreWrite));
        }
        if self.file.is_none() {
            let path = self.dir.as_ref().expect("persistent").join(STORE_FILE);
            let fresh =
                !path.exists() || std::fs::metadata(&path).map(|m| m.len() == 0).unwrap_or(true);
            let mut file = std::fs::OpenOptions::new().create(true).append(true).open(&path)?;
            if fresh {
                let header = format!("{STORE_HEADER_V2}\n");
                file.write_all(header.as_bytes())?;
                self.total_bytes = header.len() as u64;
            }
            self.file = Some(file);
        }
        let file = self.file.as_mut().expect("append handle");
        file.write_all(&framed)?;
        file.flush()?;
        self.total_bytes += framed.len() as u64;
        if dead {
            self.dead_bytes += framed.len() as u64;
        }
        self.dirty = true;
        Ok(())
    }

    fn sync_now(&mut self) -> Result<(), Error> {
        self.ops += 1;
        if self.opts.faults.fires(FaultSite::StoreFsync, "store", &self.ops.to_string()) {
            return Err(self.injected(FaultSite::StoreFsync));
        }
        if let Some(file) = &self.file {
            file.sync_all()?;
        }
        self.dirty = false;
        self.last_sync = Instant::now();
        Ok(())
    }

    fn sync_per_policy(&mut self) -> Result<(), Error> {
        if !self.dirty {
            return Ok(());
        }
        match self.opts.fsync {
            FsyncPolicy::Never => Ok(()),
            FsyncPolicy::PerIngest => self.sync_now(),
            FsyncPolicy::Interval(d) => {
                if self.last_sync.elapsed() >= d {
                    self.sync_now()
                } else {
                    Ok(())
                }
            }
        }
    }

    fn maybe_auto_compact(&mut self) {
        if self.opts.auto_compact
            && self.dir.is_some()
            && self.total_bytes >= self.opts.compact_min_bytes
            && self.dead_ratio() >= self.opts.compact_dead_ratio
            && self.compact().is_err()
        {
            // The ingest that triggered this already succeeded; a failed
            // background compaction is counted and retried on a later
            // ingest rather than failing the request.
            self.compact_failures += 1;
        }
    }

    /// Writes and publishes a compaction snapshot; each I/O step is a
    /// fault-injection point.
    fn write_snapshot(&mut self, tmp: &Path, path: &Path, buf: &[u8]) -> Result<(), Error> {
        self.ops += 1;
        if self.opts.faults.fires(FaultSite::StoreWrite, "store", &self.ops.to_string()) {
            return Err(self.injected(FaultSite::StoreWrite));
        }
        let mut f = File::create(tmp)?;
        f.write_all(buf)?;
        self.ops += 1;
        if self.opts.faults.fires(FaultSite::StoreFsync, "store", &self.ops.to_string()) {
            return Err(self.injected(FaultSite::StoreFsync));
        }
        f.sync_all()?;
        drop(f);
        self.ops += 1;
        if self.opts.faults.fires(FaultSite::StoreRename, "store", &self.ops.to_string()) {
            return Err(self.injected(FaultSite::StoreRename));
        }
        std::fs::rename(tmp, path)?;
        Ok(())
    }

    /// Loads entries from a raw store file (v1 or v2), returning the
    /// byte length of the valid prefix.
    fn load(&mut self, raw: &[u8]) -> usize {
        let scan = scan_store(raw);
        self.recovery = RecoveryStats {
            entries: 0,
            seen_records: scan.seen_records,
            skipped_records: scan.skipped_records,
            bytes_dropped: (raw.len() - scan.valid_len) as u64,
            from_v1: scan.version == 1,
        };
        self.format_v1 = scan.version == 1;
        match scan.version {
            1 => {
                let text = std::str::from_utf8(raw).unwrap_or("");
                let mut cursor = text
                    .strip_prefix(STORE_HEADER_V1)
                    .and_then(|r| r.strip_prefix('\n'))
                    .unwrap_or("");
                while let Some((entry, rest)) = parse_v1_record(cursor) {
                    cursor = rest;
                    if !self.by_hash.contains_key(&entry.hash.0) {
                        self.insert_entry(entry);
                    }
                }
                // The whole v1 file (valid prefix included) is dead
                // weight: the migration compaction rewrites all of it.
                self.total_bytes = raw.len() as u64;
                self.dead_bytes = (raw.len() - scan.valid_len) as u64;
            }
            2 => {
                for (payload, size) in walk_v2(raw).0 {
                    match payload {
                        V2Payload::Entry(entry) => {
                            if !self.by_hash.contains_key(&entry.hash.0) {
                                self.insert_entry(entry);
                            } else {
                                self.dead_bytes += size as u64;
                            }
                        }
                        V2Payload::Seen(hash, delta) => {
                            if let Some(&i) = self.by_hash.get(&hash.0) {
                                self.entries[i].seen += delta;
                            }
                            self.dead_bytes += size as u64;
                        }
                    }
                }
                self.total_bytes = scan.valid_len as u64;
            }
            _ => {
                // Unrecognized header: recover nothing; the file is
                // truncated to zero and rewritten as v2 on first append.
                self.total_bytes = 0;
            }
        }
        self.recovery.entries = self.entries.len();
        scan.valid_len
    }
}

/// One record payload of a v2 log.
enum V2Payload {
    Entry(StoreEntry),
    Seen(ContentHash, u64),
}

/// Walks the framed records of a v2 log (header included in the valid
/// prefix), stopping at the first frame that fails to parse or
/// checksum. Returns the records with their framed byte sizes, the
/// valid prefix length, and how many frame headers follow it.
fn walk_v2(raw: &[u8]) -> (Vec<(V2Payload, usize)>, usize, usize) {
    let header = format!("{STORE_HEADER_V2}\n").into_bytes();
    if !raw.starts_with(&header) {
        return (Vec::new(), 0, count_skipped(raw));
    }
    let mut records = Vec::new();
    let mut pos = header.len();
    loop {
        let rest = &raw[pos..];
        if rest.is_empty() {
            break;
        }
        let Some(parsed) = parse_v2_frame(rest) else { break };
        let (payload, size) = parsed;
        records.push((payload, size));
        pos += size;
    }
    let skipped = count_skipped(&raw[pos..]);
    (records, pos, skipped)
}

/// Parses one frame off the front of `rest`: `R <len> <crc>\n<payload>\n`
/// with a matching checksum and a well-formed payload.
fn parse_v2_frame(rest: &[u8]) -> Option<(V2Payload, usize)> {
    let nl = rest.iter().position(|&b| b == b'\n')?;
    let line = std::str::from_utf8(&rest[..nl]).ok()?;
    let fields = line.strip_prefix("R ")?;
    let (len_s, crc_s) = fields.split_once(' ')?;
    let len: usize = len_s.parse().ok()?;
    if crc_s.len() != 8 {
        return None;
    }
    let crc = u32::from_str_radix(crc_s, 16).ok()?;
    let body_start = nl + 1;
    if rest.len() < body_start + len + 1 || rest[body_start + len] != b'\n' {
        return None;
    }
    let payload = &rest[body_start..body_start + len];
    if crc32(payload) != crc {
        return None;
    }
    let payload = parse_v2_payload(std::str::from_utf8(payload).ok()?)?;
    Some((payload, body_start + len + 1))
}

/// Parses a checksum-valid payload into an entry or a seen bump.
fn parse_v2_payload(payload: &str) -> Option<V2Payload> {
    if let Some(fields) = payload.strip_prefix("seen ") {
        let (hash_s, delta_s) = fields.split_once(' ')?;
        let hash = ContentHash::from_hex(hash_s)?;
        let delta: u64 = delta_s.strip_prefix('+')?.parse().ok()?;
        return Some(V2Payload::Seen(hash, delta));
    }
    let (header, text) = payload.split_once('\n')?;
    let fields = header.strip_prefix("fn ")?;
    let (hash_s, fields) = fields.split_once(' ')?;
    let hash = ContentHash::from_hex(hash_s)?;
    let (seen_s, fields) = fields.split_once(' ')?;
    let seen: u64 = seen_s.strip_prefix("seen=")?.parse().ok()?;
    let (len_s, fields) = fields.split_once(' ')?;
    let len: usize = len_s.strip_prefix("len=")?.parse().ok()?;
    let (sig_s, name_s) = fields.split_once(' ')?;
    let sig_s = sig_s.strip_prefix("sig=")?;
    let name = name_s.strip_prefix("name=")?.to_owned();
    let mut signature = Vec::new();
    for part in sig_s.split(',') {
        signature.push(u64::from_str_radix(part, 16).ok()?);
    }
    if text.len() != len || ContentHash::of_bytes(text.as_bytes()) != hash {
        return None;
    }
    Some(V2Payload::Entry(StoreEntry { hash, name, seen, text: text.to_owned(), signature }))
}

/// The payload of an entry record (framing added by [`frame`]).
fn entry_payload(entry: &StoreEntry) -> Vec<u8> {
    let sig: Vec<String> = entry.signature.iter().map(|x| format!("{x:x}")).collect();
    let mut payload = format!(
        "fn {} seen={} len={} sig={} name={}\n",
        entry.hash,
        entry.seen,
        entry.text.len(),
        sig.join(","),
        entry.name
    )
    .into_bytes();
    payload.extend_from_slice(entry.text.as_bytes());
    payload
}

/// Counts the frame headers in the invalid remainder of a log — the
/// "skipped corrupt records" diagnostic. A non-empty remainder with no
/// recognizable frame header counts as one torn record.
fn count_skipped(remainder: &[u8]) -> usize {
    if remainder.is_empty() {
        return 0;
    }
    let mut n = 0;
    let mut at_line_start = true;
    let mut iter = remainder.iter().peekable();
    while let Some(&b) = iter.next() {
        if at_line_start && b == b'R' && iter.peek() == Some(&&b' ') {
            n += 1;
        }
        at_line_start = b == b'\n';
    }
    n.max(1)
}

/// A summary scan of raw store-file bytes — what [`FunctionStore::open`]
/// would recover — without building a store. Recovery tooling and the
/// chaos harness use this to compute the expected surviving set after a
/// simulated crash.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StoreScan {
    /// Detected format version (0 = unrecognized/empty, 1, or 2).
    pub version: u32,
    /// Recovered `(hash, seen)` pairs, bump records folded in.
    pub entries: Vec<(ContentHash, u64)>,
    /// Byte length of the checksum-valid prefix (v2) or parsed prefix
    /// (v1).
    pub valid_len: usize,
    /// Frame headers (or one torn record) past the valid prefix.
    pub skipped_records: usize,
    /// `seen` bump records inside the valid prefix.
    pub seen_records: usize,
}

/// Scans raw store-file bytes; see [`StoreScan`].
pub fn scan_store(raw: &[u8]) -> StoreScan {
    let v2_header = format!("{STORE_HEADER_V2}\n");
    if raw.starts_with(v2_header.as_bytes()) {
        let (records, valid_len, skipped) = walk_v2(raw);
        let mut entries: Vec<(ContentHash, u64)> = Vec::new();
        let mut seen_records = 0;
        for (payload, _) in records {
            match payload {
                V2Payload::Entry(e) => {
                    if !entries.iter().any(|(h, _)| *h == e.hash) {
                        entries.push((e.hash, e.seen));
                    }
                }
                V2Payload::Seen(hash, delta) => {
                    seen_records += 1;
                    if let Some((_, n)) = entries.iter_mut().find(|(h, _)| *h == hash) {
                        *n += delta;
                    }
                }
            }
        }
        return StoreScan {
            version: 2,
            entries,
            valid_len,
            skipped_records: skipped,
            seen_records,
        };
    }
    let v1_header = format!("{STORE_HEADER_V1}\n");
    if raw.starts_with(v1_header.as_bytes()) {
        let text = std::str::from_utf8(raw).unwrap_or("");
        let mut entries: Vec<(ContentHash, u64)> = Vec::new();
        let mut cursor = &text[v1_header.len().min(text.len())..];
        while let Some((entry, rest)) = parse_v1_record(cursor) {
            cursor = rest;
            if !entries.iter().any(|(h, _)| *h == entry.hash) {
                entries.push((entry.hash, entry.seen));
            }
        }
        let valid_len = raw.len() - cursor.len();
        let skipped = if cursor.is_empty() { 0 } else { 1 };
        return StoreScan {
            version: 1,
            entries,
            valid_len,
            skipped_records: skipped,
            seen_records: 0,
        };
    }
    StoreScan {
        version: 0,
        entries: Vec::new(),
        valid_len: 0,
        skipped_records: if raw.is_empty() { 0 } else { 1 },
        seen_records: 0,
    }
}

/// Parses one legacy v1 record off the front of `cursor`; `None` on a
/// malformed or truncated record.
fn parse_v1_record(cursor: &str) -> Option<(StoreEntry, &str)> {
    let (header, body) = cursor.split_once('\n')?;
    let fields = header.strip_prefix("fn ")?;
    let (hash_s, fields) = fields.split_once(' ')?;
    let hash = ContentHash::from_hex(hash_s)?;
    let (seen_s, fields) = fields.split_once(' ')?;
    let seen: u64 = seen_s.strip_prefix("seen=")?.parse().ok()?;
    let (len_s, fields) = fields.split_once(' ')?;
    let len: usize = len_s.strip_prefix("len=")?.parse().ok()?;
    let (sig_s, name_s) = fields.split_once(' ')?;
    let sig_s = sig_s.strip_prefix("sig=")?;
    let name = name_s.strip_prefix("name=")?.to_owned();
    let mut signature = Vec::new();
    for part in sig_s.split(',') {
        signature.push(u64::from_str_radix(part, 16).ok()?);
    }
    if body.len() < len + 1 || !body.is_char_boundary(len) {
        return None; // torn tail
    }
    let text = body[..len].to_owned();
    let rest = body[len..].strip_prefix('\n')?;
    // The stored hash must match the stored text — a mismatch means the
    // record (not just the tail) is corrupt, so stop here too.
    if ContentHash::of_bytes(text.as_bytes()) != hash {
        return None;
    }
    Some((StoreEntry { hash, name, seen, text, signature }, rest))
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};
    use std::sync::atomic::{AtomicUsize, Ordering};

    fn temp_dir(tag: &str) -> PathBuf {
        static N: AtomicUsize = AtomicUsize::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("fmsa-store-test-{}-{tag}-{n}", std::process::id()))
    }

    fn module_with(names: &[(&str, i32)]) -> Module {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        for &(name, c) in names {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..6 {
                v = b.add(v, b.const_i32(c + j));
            }
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn canonical_text_is_name_independent() {
        let m = module_with(&[("alpha", 1), ("beta_longer_name", 1)]);
        let ids = m.func_ids();
        let ta = canonical_function_text(&m, ids[0]);
        let tb = canonical_function_text(&m, ids[1]);
        assert_eq!(ta, tb);
        assert!(ta.contains("@<self>"), "{ta}");
        assert!(!ta.contains("alpha"));
    }

    #[test]
    fn prefix_names_do_not_over_normalize() {
        // A function `f` calling `ff` must not rewrite `@ff` to
        // `@<self>f`.
        let mut m = module_with(&[("ff", 1)]);
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let callee = m.func_ids()[0];
        let f = m.create_function("f", fn_ty);
        let mut b = FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        let r = b.call(callee, vec![Value::Param(0)]);
        b.ret(Some(r));
        let text = canonical_function_text(&m, f);
        assert!(text.contains("@ff"), "{text}");
        assert!(text.contains("@<self>"), "{text}");
    }

    #[test]
    fn ingest_dedupes_and_counts() {
        let mut store = FunctionStore::in_memory();
        let m = module_with(&[("a", 1), ("b", 1), ("c", 9)]);
        let s1 = store.ingest_module(&m).unwrap();
        // a and b share a body (name-normalized), c differs.
        assert_eq!(s1.functions, 3);
        assert_eq!(s1.misses, 2);
        assert_eq!(s1.hits, 1);
        assert_eq!(store.len(), 2);
        let s2 = store.ingest_module(&m).unwrap();
        assert_eq!(s2.hits, 3);
        assert_eq!(s2.misses, 0);
        assert!(store.hit_rate() > 0.5);
    }

    #[test]
    fn persistence_survives_reopen() {
        let dir = temp_dir("reopen");
        let m = module_with(&[("a", 1), ("c", 9)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            let s = store.ingest_module(&m).unwrap();
            assert_eq!(s.misses, 2);
        }
        let mut store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert_eq!(store.hits(), 0, "counters are per-run");
        assert_eq!(store.recovery().entries, 2);
        assert_eq!(store.recovery().skipped_records, 0);
        assert_eq!(store.format_version(), 2);
        let s = store.ingest_module(&m).unwrap();
        assert_eq!(s.hits, 2);
        assert_eq!(s.misses, 0);
        assert!(store.hit_rate() > 0.99);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_is_ignored_and_truncated() {
        let dir = temp_dir("torn");
        let m = module_with(&[("a", 1), ("c", 9)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            store.ingest_module(&m).unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the tail.
        let path = dir.join(STORE_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        let cut = raw.len() - 17;
        raw.truncate(cut);
        std::fs::write(&path, &raw).unwrap();
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1, "intact prefix loads, torn tail dropped");
        assert_eq!(store.recovery().skipped_records, 1);
        assert!(store.recovery().bytes_dropped > 0);
        // Recovery truncated the log: a fresh open sees a clean file.
        let again = FunctionStore::open(&dir).unwrap();
        assert_eq!(again.len(), 1);
        assert_eq!(again.recovery().skipped_records, 0);
        assert_eq!(again.recovery().bytes_dropped, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn bit_flip_recovers_longest_valid_prefix() {
        let dir = temp_dir("flip");
        let m = module_with(&[("a", 1), ("c", 9)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            store.ingest_module(&m).unwrap();
        }
        let path = dir.join(STORE_FILE);
        let mut raw = std::fs::read(&path).unwrap();
        // Flip one bit in the *second* record's payload: CRC must catch
        // it and recovery keeps exactly the first record.
        let scan = scan_store(&raw);
        assert_eq!(scan.entries.len(), 2);
        let mid = raw.len() - 10;
        raw[mid] ^= 0x40;
        std::fs::write(&path, &raw).unwrap();
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert_eq!(store.recovery().skipped_records, 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn seen_counts_are_durable() {
        let dir = temp_dir("seen");
        let m = module_with(&[("a", 1), ("c", 9)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            store.ingest_module(&m).unwrap();
            store.ingest_module(&m).unwrap();
            store.ingest_module(&m).unwrap();
        }
        let mut store = FunctionStore::open(&dir).unwrap();
        for e in store.entries() {
            assert_eq!(e.seen, 3, "{}: seen bumps must survive restart", e.name);
        }
        assert_eq!(store.recovery().seen_records, 4, "2 entries x 2 repeat ingests");
        // Compaction folds the bumps and drops the bump records.
        let before = store.total_bytes();
        let stats = store.compact().unwrap();
        assert_eq!(stats.bytes_before, before);
        assert!(stats.bytes_after < before);
        assert_eq!(store.dead_bytes(), 0);
        drop(store);
        let store = FunctionStore::open(&dir).unwrap();
        for e in store.entries() {
            assert_eq!(e.seen, 3, "folded seen survives compaction");
        }
        assert_eq!(store.recovery().seen_records, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn v1_store_loads_and_migrates_through_compaction() {
        let dir = temp_dir("v1");
        std::fs::create_dir_all(&dir).unwrap();
        // Build entries via an in-memory store, then write them in the
        // legacy v1 format by hand.
        let m = module_with(&[("a", 1), ("c", 9)]);
        let mut mem = FunctionStore::in_memory();
        mem.ingest_module(&m).unwrap();
        let mut v1 = format!("{STORE_HEADER_V1}\n");
        for e in mem.entries() {
            let sig: Vec<String> = e.signature.iter().map(|x| format!("{x:x}")).collect();
            v1.push_str(&format!(
                "fn {} seen=2 len={} sig={} name={}\n",
                e.hash,
                e.text.len(),
                sig.join(","),
                e.name
            ));
            v1.push_str(&e.text);
            v1.push('\n');
        }
        std::fs::write(dir.join(STORE_FILE), v1.as_bytes()).unwrap();

        let mut store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.format_version(), 1);
        assert!(store.recovery().from_v1);
        assert_eq!(store.len(), 2);
        for e in store.entries() {
            assert_eq!(e.seen, 2);
        }
        // An ingest forces the migration compaction, then appends v2.
        store.ingest_module(&m).unwrap();
        assert_eq!(store.format_version(), 2);
        assert!(store.compactions() >= 1);
        drop(store);
        let raw = std::fs::read(dir.join(STORE_FILE)).unwrap();
        assert!(raw.starts_with(format!("{STORE_HEADER_V2}\n").as_bytes()));
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        assert!(!store.recovery().from_v1);
        for e in store.entries() {
            assert_eq!(e.seen, 3, "historical v1 count + migrated bump");
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_write_fault_keeps_memory_and_disk_agreeing() {
        let dir = temp_dir("fault-write");
        let opts = StoreOptions {
            faults: FaultPlan::new(1, 1_000_000, &[FaultSite::StoreWrite]),
            ..StoreOptions::default()
        };
        let mut store = FunctionStore::open_with(&dir, opts).unwrap();
        let m = module_with(&[("a", 1)]);
        let err = store.ingest_module(&m).unwrap_err();
        assert!(err.to_string().contains("injected fault"), "{err}");
        assert!(store.is_empty(), "failed append must not leave a memory-only entry");
        // Clearing the plan makes the retry (a later op) succeed.
        store.set_faults(FaultPlan::disabled());
        store.ingest_module(&m).unwrap();
        assert_eq!(store.len(), 1);
        drop(store);
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn injected_rename_fault_leaves_old_log_authoritative() {
        let dir = temp_dir("fault-rename");
        let m = module_with(&[("a", 1), ("c", 9)]);
        let mut store = FunctionStore::open(&dir).unwrap();
        store.ingest_module(&m).unwrap();
        store.ingest_module(&m).unwrap();
        store.set_faults(FaultPlan::new(1, 1_000_000, &[FaultSite::StoreRename]));
        let err = store.compact().unwrap_err();
        assert!(err.to_string().contains("store-rename"), "{err}");
        assert!(!dir.join(STORE_TMP_FILE).exists(), "failed compaction cleans its tmp");
        // The store keeps appending to the old log and stays readable.
        store.set_faults(FaultPlan::disabled());
        store.ingest_module(&m).unwrap();
        drop(store);
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        for e in store.entries() {
            assert_eq!(e.seen, 3);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn auto_compaction_triggers_on_dead_ratio() {
        let dir = temp_dir("autocompact");
        let opts = StoreOptions {
            compact_dead_ratio: 0.05,
            compact_min_bytes: 1,
            ..StoreOptions::default()
        };
        let mut store = FunctionStore::open_with(&dir, opts).unwrap();
        let m = module_with(&[("a", 1), ("c", 9)]);
        for _ in 0..10 {
            store.ingest_module(&m).unwrap();
        }
        assert!(store.compactions() >= 1, "seen bumps must trip the dead-ratio trigger");
        drop(store);
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 2);
        for e in store.entries() {
            assert_eq!(e.seen, 10);
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_compaction_tmp_is_ignored_and_removed() {
        let dir = temp_dir("staletmp");
        let m = module_with(&[("a", 1)]);
        {
            let mut store = FunctionStore::open(&dir).unwrap();
            store.ingest_module(&m).unwrap();
        }
        // A crash mid-compaction leaves a partial tmp; the rename never
        // happened, so the old log must win.
        std::fs::write(dir.join(STORE_TMP_FILE), b"fmsa-store v2\ngarbage").unwrap();
        let store = FunctionStore::open(&dir).unwrap();
        assert_eq!(store.len(), 1);
        assert!(!dir.join(STORE_TMP_FILE).exists());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn similar_finds_near_clones_across_uploads() {
        let mut store = FunctionStore::in_memory();
        // Two separate "modules" (uploads) with similar bodies and one
        // very different body.
        store.ingest_module(&module_with(&[("a", 1)])).unwrap();
        store.ingest_module(&module_with(&[("b", 2)])).unwrap();
        let mut far = Module::new("far");
        let i32t = far.types.i32();
        let fn_ty = far.types.func(i32t, vec![i32t]);
        let f = far.create_function("far", fn_ty);
        let mut b = FuncBuilder::new(&mut far, f);
        let e = b.block("entry");
        b.switch_to(e);
        let mut v = Value::Param(0);
        for _ in 0..9 {
            v = b.mul(v, b.const_i32(3));
            v = b.xor(v, b.const_i32(5));
        }
        b.ret(Some(v));
        store.ingest_module(&far).unwrap();
        let subject = store.entries().next().unwrap().hash;
        let similar = store.similar(subject, 5);
        // The near-clone from the *other upload* must rank first.
        assert!(!similar.is_empty(), "cross-upload clone should collide in LSH");
        assert_eq!(similar[0].name, "b");
        assert!(similar[0].score > 0.8, "{:?}", similar[0]);
    }

    #[test]
    fn hash_hex_round_trips() {
        let h = ContentHash::of_bytes(b"some function body");
        assert_eq!(ContentHash::from_hex(&h.to_string()), Some(h));
        assert_eq!(ContentHash::from_hex("zz"), None);
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(FsyncPolicy::parse("per-ingest"), Ok(FsyncPolicy::PerIngest));
        assert_eq!(
            FsyncPolicy::parse("interval:5"),
            Ok(FsyncPolicy::Interval(Duration::from_secs(5)))
        );
        assert!(FsyncPolicy::parse("interval:x").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
        assert_eq!(FsyncPolicy::Interval(Duration::from_secs(5)).to_string(), "interval:5");
    }
}
