//! The unified run configuration and the `optimize` entry point.
//!
//! Historically a run was configured by two structs: [`FmsaOptions`]
//! (what to merge and how) and [`PipelineOptions`] (how to parallelize
//! it), with every caller — `fmsa_opt`, `experiments`, all tests —
//! constructing both and choosing between [`run_fmsa`] and
//! [`run_fmsa_pipeline`] by hand. PR 7 folds both into one
//! `#[non_exhaustive]` builder-style [`Config`] and one fallible entry
//! point [`optimize`], which is what the merge daemon (`fmsa-serve`)
//! and the CLI sit on. The old structs survive as deprecated shims with
//! `From`/`Into` conversions in both directions, so downstream code
//! migrates mechanically.
//!
//! Driver selection lives in [`Config::threads`]: `None` runs the
//! paper's sequential driver, `Some(n)` the parallel pipeline with `n`
//! workers (`Some(0)` = available parallelism). Both produce
//! bit-identical output (see [`crate::pipeline`]), so the choice is pure
//! performance policy.

use crate::error::Error;
use crate::faults::FaultPlan;
use crate::merge::MergeConfig;
#[allow(deprecated)]
use crate::pass::{run_fmsa, FmsaOptions, FmsaStats};
#[allow(deprecated)]
use crate::pipeline::{run_fmsa_pipeline, PipelineOptions};
use crate::quarantine::panic_message;
use crate::search::SearchStrategy;
use fmsa_ir::Module;
use fmsa_target::TargetArch;
use std::collections::HashSet;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// One unified configuration for a merge run, covering everything the
/// old [`FmsaOptions`] + [`PipelineOptions`] pair expressed, plus the
/// policy knobs the daemon needs ([`Config::identical_prepass`],
/// [`Config::fail_on_quarantine`]).
///
/// `#[non_exhaustive]` so fields can be added without a breaking change;
/// construct it with [`Config::new`] (or `Config::default()`) and the
/// chainable builder methods:
///
/// ```
/// use fmsa_core::Config;
/// let cfg = Config::new().threshold(5).parallel(4);
/// assert_eq!(cfg.threshold, 5);
/// assert_eq!(cfg.threads, Some(4));
/// ```
#[derive(Debug, Clone)]
#[non_exhaustive]
pub struct Config {
    /// Exploration threshold `t`: top-ranked candidates tried per
    /// function (paper evaluates t = 1, 5, 10).
    pub threshold: usize,
    /// Oracle mode: evaluate every candidate, commit the best — the
    /// paper's quadratic upper bound. Forces exact search and the
    /// sequential driver.
    pub oracle: bool,
    /// Target whose cost model drives profitability.
    pub arch: TargetArch,
    /// Per-pair merge configuration.
    pub merge: MergeConfig,
    /// Function names excluded from merging (§V-D hot-function
    /// exclusion).
    pub exclude: HashSet<String>,
    /// Candidates below this similarity are never attempted.
    pub min_similarity: f64,
    /// Canonicalize intra-block instruction order before merging.
    pub canonicalize: bool,
    /// Candidate search strategy (exact, LSH, or auto by module size).
    pub search: SearchStrategy,
    /// Per-pair alignment cost bounds (honoured by the pipeline driver).
    pub budget: fmsa_align::AlignmentBudget,
    /// Driver selection: `None` = the paper's sequential driver,
    /// `Some(n)` = the parallel pipeline with `n` workers (`0` =
    /// available parallelism). Output is bit-identical either way.
    pub threads: Option<usize>,
    /// Pipeline: subjects scheduled per generation (`0` = whole
    /// frontier). Ignored by the sequential driver.
    pub batch: usize,
    /// Pipeline: speculative codegen depth per subject (`0` disables
    /// speculation). Ignored by the sequential driver.
    pub spec_depth: usize,
    /// Deterministic fault injection (tests, `experiments faults`).
    pub faults: FaultPlan,
    /// Run LLVM-style identical-function merging before FMSA — what
    /// `fmsa_opt --technique fmsa` has always done, and what the paper's
    /// evaluation assumes. Disable to measure FMSA in isolation.
    pub identical_prepass: bool,
    /// Treat a run that quarantined any pair as an error
    /// ([`Error::Quarantined`]) instead of a successful degraded run.
    pub fail_on_quarantine: bool,
}

impl Default for Config {
    fn default() -> Self {
        Config {
            threshold: 1,
            oracle: false,
            arch: TargetArch::X86_64,
            merge: MergeConfig::default(),
            exclude: HashSet::new(),
            min_similarity: 0.0,
            canonicalize: false,
            search: SearchStrategy::Auto,
            budget: fmsa_align::AlignmentBudget::default(),
            threads: None,
            batch: 0,
            spec_depth: usize::MAX,
            faults: FaultPlan::disabled(),
            identical_prepass: true,
            fail_on_quarantine: false,
        }
    }
}

impl Config {
    /// The default configuration: sequential driver, threshold 1, auto
    /// search, identical-merging prepass on.
    pub fn new() -> Config {
        Config::default()
    }

    /// Sets the exploration threshold `t`.
    pub fn threshold(mut self, t: usize) -> Config {
        self.threshold = t;
        self
    }

    /// Enables or disables oracle (exhaustive) exploration.
    pub fn oracle(mut self, on: bool) -> Config {
        self.oracle = on;
        self
    }

    /// Sets the target architecture.
    pub fn arch(mut self, arch: TargetArch) -> Config {
        self.arch = arch;
        self
    }

    /// Sets the per-pair merge configuration.
    pub fn merge(mut self, merge: MergeConfig) -> Config {
        self.merge = merge;
        self
    }

    /// Excludes the given function names from merging.
    pub fn exclude<I, S>(mut self, names: I) -> Config
    where
        I: IntoIterator<Item = S>,
        S: Into<String>,
    {
        self.exclude.extend(names.into_iter().map(Into::into));
        self
    }

    /// Sets the minimum candidate similarity.
    pub fn min_similarity(mut self, s: f64) -> Config {
        self.min_similarity = s;
        self
    }

    /// Enables or disables intra-block canonicalization.
    pub fn canonicalize(mut self, on: bool) -> Config {
        self.canonicalize = on;
        self
    }

    /// Sets the candidate search strategy.
    pub fn search(mut self, search: SearchStrategy) -> Config {
        self.search = search;
        self
    }

    /// Sets the alignment budget.
    pub fn budget(mut self, budget: fmsa_align::AlignmentBudget) -> Config {
        self.budget = budget;
        self
    }

    /// Selects the parallel pipeline with `n` worker threads (`0` =
    /// available parallelism).
    pub fn parallel(mut self, n: usize) -> Config {
        self.threads = Some(n);
        self
    }

    /// Selects the driver explicitly: `None` = sequential, `Some(n)` =
    /// pipeline.
    pub fn threads(mut self, threads: Option<usize>) -> Config {
        self.threads = threads;
        self
    }

    /// Sets the pipeline generation batch size.
    pub fn batch(mut self, batch: usize) -> Config {
        self.batch = batch;
        self
    }

    /// Sets the pipeline speculation depth.
    pub fn spec_depth(mut self, depth: usize) -> Config {
        self.spec_depth = depth;
        self
    }

    /// Installs a fault-injection plan.
    pub fn faults(mut self, faults: FaultPlan) -> Config {
        self.faults = faults;
        self
    }

    /// Enables or disables the identical-merging prepass.
    pub fn identical_prepass(mut self, on: bool) -> Config {
        self.identical_prepass = on;
        self
    }

    /// Treat quarantined pairs as a hard error.
    pub fn fail_on_quarantine(mut self, on: bool) -> Config {
        self.fail_on_quarantine = on;
        self
    }

    /// The merge-policy half of this configuration as the deprecated
    /// [`FmsaOptions`] — interop with the low-level reference drivers
    /// ([`run_fmsa`], [`run_fmsa_pipeline`]), which keep their paper-era
    /// signatures.
    #[allow(deprecated)]
    pub fn fmsa_options(&self) -> FmsaOptions {
        FmsaOptions {
            threshold: self.threshold,
            oracle: self.oracle,
            arch: self.arch,
            merge: self.merge.clone(),
            exclude: self.exclude.clone(),
            min_similarity: self.min_similarity,
            canonicalize: self.canonicalize,
            search: self.search,
            budget: self.budget,
        }
    }

    /// The parallelism half of this configuration as the deprecated
    /// [`PipelineOptions`]. `threads == None` maps to the pipeline
    /// default (auto), because the caller choosing [`run_fmsa_pipeline`]
    /// directly has already decided to run the pipeline.
    #[allow(deprecated)]
    pub fn pipeline_options(&self) -> PipelineOptions {
        PipelineOptions {
            threads: self.threads.unwrap_or(0),
            batch: self.batch,
            spec_depth: self.spec_depth,
            faults: self.faults,
        }
    }
}

#[allow(deprecated)]
impl From<FmsaOptions> for Config {
    fn from(o: FmsaOptions) -> Config {
        Config {
            threshold: o.threshold,
            oracle: o.oracle,
            arch: o.arch,
            merge: o.merge,
            exclude: o.exclude,
            min_similarity: o.min_similarity,
            canonicalize: o.canonicalize,
            search: o.search,
            budget: o.budget,
            ..Config::default()
        }
    }
}

#[allow(deprecated)]
impl From<(FmsaOptions, PipelineOptions)> for Config {
    fn from((o, p): (FmsaOptions, PipelineOptions)) -> Config {
        let mut cfg = Config::from(o);
        cfg.threads = Some(p.threads);
        cfg.batch = p.batch;
        cfg.spec_depth = p.spec_depth;
        cfg.faults = p.faults;
        cfg
    }
}

#[allow(deprecated)]
impl From<Config> for FmsaOptions {
    fn from(c: Config) -> FmsaOptions {
        c.fmsa_options()
    }
}

#[allow(deprecated)]
impl From<Config> for PipelineOptions {
    fn from(c: Config) -> PipelineOptions {
        c.pipeline_options()
    }
}

/// Runs the full merge stack over `module` under `cfg`: input
/// verification, the optional identical-merging prepass, the selected
/// driver behind a panic boundary, and output re-verification.
///
/// This is the library entry point the daemon and `fmsa_opt` share —
/// byte-identical output between them falls out of calling the same
/// function. Panics from merge codegen (or `FMSA_FAULTS` injection)
/// surface as [`Error::Merge`], never as an unwinding stack.
pub fn optimize(module: &mut Module, cfg: &Config) -> Result<FmsaStats, Error> {
    let errs = fmsa_ir::verify_module(module);
    if let Some(e) = errs.first() {
        return Err(Error::verify(false, &e.func, e.to_string()));
    }
    if cfg.oracle && cfg.threads.is_some() {
        // The pipeline delegates oracle runs to the sequential driver
        // anyway; make the policy explicit at the API boundary.
        return Err(Error::config("oracle mode runs sequentially; leave `threads` unset"));
    }
    let opts = cfg.fmsa_options();
    let ran = catch_unwind(AssertUnwindSafe(|| {
        if cfg.identical_prepass {
            crate::baselines::run_identical(module, cfg.arch);
        }
        match cfg.threads {
            Some(_) => run_fmsa_pipeline(module, &opts, &cfg.pipeline_options()),
            None => run_fmsa(module, &opts),
        }
    }));
    let stats = match ran {
        Ok(stats) => stats,
        Err(payload) => {
            return Err(Error::Merge { function: None, message: panic_message(payload.as_ref()) })
        }
    };
    let errs = fmsa_ir::verify_module(module);
    if let Some(e) = errs.first() {
        return Err(Error::verify(true, &e.func, e.to_string()));
    }
    if cfg.fail_on_quarantine && !stats.quarantine.is_empty() {
        return Err(Error::Quarantined {
            pairs: stats.quarantine.len(),
            summary: stats.quarantine.summary(),
        });
    }
    Ok(stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};

    fn clone_family(m: &mut Module, count: usize) {
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        for k in 0..count {
            let f = m.create_function(format!("fam{k}"), fn_ty);
            let mut b = FuncBuilder::new(m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..12 {
                v = b.add(v, b.const_i32(j));
                v = b.mul(v, Value::Param(1));
            }
            v = b.xor(v, b.const_i32(k as i32 + 100));
            b.ret(Some(v));
        }
    }

    #[test]
    fn optimize_merges_and_verifies() {
        let mut m = Module::new("m");
        clone_family(&mut m, 4);
        let stats = optimize(&mut m, &Config::new().threshold(10)).unwrap();
        assert!(stats.merges >= 2, "{stats:?}");
        assert!(fmsa_ir::verify_module(&m).is_empty());
    }

    #[test]
    fn sequential_and_pipeline_configs_agree_bitwise() {
        let mut m1 = Module::new("m");
        clone_family(&mut m1, 6);
        let mut m2 = Module::new("m");
        clone_family(&mut m2, 6);
        optimize(&mut m1, &Config::new().threshold(5)).unwrap();
        optimize(&mut m2, &Config::new().threshold(5).parallel(2)).unwrap();
        assert_eq!(fmsa_ir::printer::print_module(&m1), fmsa_ir::printer::print_module(&m2));
    }

    #[test]
    fn invalid_input_is_verify_input_error() {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![]);
        // A defined function whose block lacks a terminator fails
        // verification.
        let f = m.create_function("broken", fn_ty);
        let b = m.func_mut(f).add_block("entry");
        m.func_mut(f).append_inst(
            b,
            fmsa_ir::Inst::new(
                fmsa_ir::Opcode::Add,
                i32t,
                vec![Value::ConstInt { ty: i32t, bits: 1 }, Value::ConstInt { ty: i32t, bits: 2 }],
            ),
        );
        let err = optimize(&mut m, &Config::new()).unwrap_err();
        assert_eq!(err.stage(), "verify-input");
        assert_eq!(err.function(), Some("broken"));
    }

    #[test]
    fn oracle_plus_threads_is_a_config_error() {
        let mut m = Module::new("m");
        let err = optimize(&mut m, &Config::new().oracle(true).parallel(2)).unwrap_err();
        assert_eq!(err.stage(), "config");
    }

    #[allow(deprecated)]
    #[test]
    fn shims_round_trip() {
        let cfg = Config::new().threshold(7).parallel(3).batch(64).canonicalize(true);
        let opts: FmsaOptions = cfg.clone().into();
        let pipe: PipelineOptions = cfg.clone().into();
        assert_eq!(opts.threshold, 7);
        assert!(opts.canonicalize);
        assert_eq!(pipe.threads, 3);
        assert_eq!(pipe.batch, 64);
        let back = Config::from((opts, pipe));
        assert_eq!(back.threshold, 7);
        assert_eq!(back.threads, Some(3));
        assert_eq!(back.batch, 64);
        assert!(back.canonicalize);
    }

    #[test]
    fn identical_prepass_is_part_of_the_contract() {
        // Two byte-identical functions: the prepass merges them even at
        // threshold 0 exploration budget for FMSA proper.
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        for name in ["a", "b"] {
            let f = m.create_function(name, fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let r = b.add(Value::Param(0), b.const_i32(1));
            b.ret(Some(r));
        }
        let with = {
            let mut mm = m.clone();
            optimize(&mut mm, &Config::new()).unwrap();
            fmsa_ir::printer::print_module(&mm)
        };
        let without = {
            let mut mm = m.clone();
            optimize(&mut mm, &Config::new().identical_prepass(false)).unwrap();
            fmsa_ir::printer::print_module(&mm)
        };
        // The prepass thunks one of the twins; without it FMSA may still
        // merge them, but through its own (different) codegen path.
        assert_ne!(with, without);
    }
}
