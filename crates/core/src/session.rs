//! The merge session: store-backed, cache-accelerated request lifecycle.
//!
//! A [`MergeSession`] is what a long-running server holds between
//! requests: the unified [`Config`], the content-addressed
//! [`FunctionStore`] (with its durable LSH index), a bounded
//! whole-response cache, and running totals. Each request is one
//! [`MergeSession::merge_module`] call: ingest the upload into the store
//! (hit/miss accounting), run the shared [`optimize`] entry point, and
//! print the result — so a session response is **byte-identical** to a
//! batch `fmsa_opt` run with the same configuration, by construction.
//!
//! The response cache is keyed by a caller-supplied [`ContentHash`]
//! (the daemon hashes the raw upload bytes before even parsing them): a
//! byte-identical re-upload skips parse, ingest and merge entirely, and
//! its functions are replayed into the store's hit counters — they are
//! definitionally all stored. Merge *decisions* never read the cache or
//! the store, so cross-request state can accelerate but never alter a
//! response.

use crate::config::{optimize, Config};
use crate::error::Error;
use crate::store::{CompactStats, ContentHash, FunctionStore, StoreOptions};
use crate::telemetry::{trace, DecisionLog, DecisionRecord};
use fmsa_ir::{printer, Module};
use std::collections::VecDeque;
use std::path::PathBuf;
use std::time::{Duration, Instant};

/// Whole-response cache entries kept per session; the cache exists to
/// make byte-identical re-uploads cheap, not to be a CDN — keep it
/// small and bounded.
const CACHE_CAP: usize = 32;

/// Per-request statistics, reported alongside every merge response.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RequestStats {
    /// Defined functions in the uploaded module.
    pub functions: usize,
    /// Merges committed by this request.
    pub merges: usize,
    /// Module size before merging, in cost-model bytes.
    pub size_before: u64,
    /// Module size after merging.
    pub size_after: u64,
    /// Code-size reduction, percent.
    pub reduction_percent: f64,
    /// Uploaded functions already present in the store.
    pub store_hits: usize,
    /// Uploaded functions newly added to the store.
    pub store_misses: usize,
    /// Distinct functions in the store after this request.
    pub store_size: usize,
    /// Pairs quarantined during this request (degraded, not failed).
    pub quarantined: usize,
    /// Wall clock spent serving the request.
    pub wall: Duration,
    /// Whether the response came from the whole-response cache.
    pub from_cache: bool,
}

/// The result of one merge request.
#[derive(Debug, Clone)]
pub struct MergeOutcome {
    /// The merged module, printed in textual IR.
    pub output: String,
    /// Per-request statistics.
    pub stats: RequestStats,
}

/// Session-lifetime totals.
#[derive(Debug, Clone, Copy, Default)]
pub struct SessionTotals {
    /// Requests served (successful merges, including cached replays).
    pub requests: u64,
    /// Total merges committed.
    pub merges: u64,
    /// Total functions uploaded.
    pub functions: u64,
    /// Requests served from the response cache.
    pub cache_hits: u64,
    /// Total wall clock across requests.
    pub wall: Duration,
}

struct CachedResponse {
    key: u128,
    output: String,
    stats: RequestStats,
    /// Content hashes of the upload's functions, so a replay can
    /// durably bump their `seen` counts without re-parsing anything.
    hashes: Vec<ContentHash>,
}

/// Merge decision records retained per session for
/// `GET /v1/merges/recent` — a diagnostic window, not an archive.
const SESSION_DECISION_CAP: usize = 4096;

/// A long-lived merging session over a [`FunctionStore`].
pub struct MergeSession {
    config: Config,
    store: FunctionStore,
    cache: VecDeque<CachedResponse>,
    totals: SessionTotals,
    decisions: DecisionLog,
}

impl MergeSession {
    /// A session over a fresh in-memory store.
    pub fn new(config: Config) -> MergeSession {
        MergeSession {
            config,
            store: FunctionStore::in_memory(),
            cache: VecDeque::new(),
            totals: SessionTotals::default(),
            decisions: DecisionLog::new(SESSION_DECISION_CAP),
        }
    }

    /// A session over the persistent store at `dir` (created if absent,
    /// reloaded — entries and LSH index — if present).
    pub fn open(config: Config, dir: impl Into<PathBuf>) -> Result<MergeSession, Error> {
        MergeSession::open_with(config, dir, StoreOptions::default())
    }

    /// [`MergeSession::open`] with explicit store durability, compaction,
    /// and fault-injection options — how the daemon wires `--fsync` and
    /// `FMSA_FAULTS` store sites through to the log.
    pub fn open_with(
        config: Config,
        dir: impl Into<PathBuf>,
        opts: StoreOptions,
    ) -> Result<MergeSession, Error> {
        Ok(MergeSession {
            config,
            store: FunctionStore::open_with(dir, opts)?,
            cache: VecDeque::new(),
            totals: SessionTotals::default(),
            decisions: DecisionLog::new(SESSION_DECISION_CAP),
        })
    }

    /// The session's merge configuration.
    pub fn config(&self) -> &Config {
        &self.config
    }

    /// The underlying function store.
    pub fn store(&self) -> &FunctionStore {
        &self.store
    }

    /// Compacts the store log (folding durable `seen` bumps, migrating a
    /// v1 log to v2) — the daemon's `POST /v1/admin/compact` and its
    /// graceful-shutdown path both land here. Merge state (cache,
    /// totals) is untouched: compaction only rewrites the log.
    pub fn compact(&mut self) -> Result<CompactStats, Error> {
        self.store.compact()
    }

    /// Fsyncs any unsynced store appends — the final durability point of
    /// a graceful shutdown.
    pub fn flush(&mut self) -> Result<(), Error> {
        self.store.flush()
    }

    /// Session-lifetime totals.
    pub fn totals(&self) -> &SessionTotals {
        &self.totals
    }

    /// The session's rolling merge decision log (bounded; counts stay
    /// exact past the bound). Cached replays add no records — decisions
    /// are only made when a merge actually runs.
    pub fn decisions(&self) -> &DecisionLog {
        &self.decisions
    }

    /// The `n` most recent merge decision records, oldest first.
    pub fn recent_decisions(&self, n: usize) -> Vec<&DecisionRecord> {
        self.decisions.recent(n)
    }

    /// Serves a request straight from the response cache, if `key` (a
    /// hash of the raw upload) matches a previous request. The cached
    /// upload's functions are replayed into the store's hit counters:
    /// a byte-identical re-upload consists entirely of stored bodies.
    pub fn merge_cached(&mut self, key: ContentHash) -> Option<MergeOutcome> {
        let t0 = Instant::now();
        let hit = self.cache.iter().find(|c| c.key == key.0)?;
        let mut stats = hit.stats.clone();
        let output = hit.output.clone();
        let hashes = hit.hashes.clone();
        stats.from_cache = true;
        stats.store_hits = stats.functions;
        stats.store_misses = 0;
        stats.store_size = self.store.len();
        stats.wall = t0.elapsed();
        // Durable seen bumps (and hit accounting) for the replayed
        // functions; a failed append degrades to under-counting rather
        // than failing a cache hit.
        let _ = self.store.bump_seen(&hashes);
        self.totals.requests += 1;
        self.totals.merges += stats.merges as u64;
        self.totals.functions += stats.functions as u64;
        self.totals.cache_hits += 1;
        self.totals.wall += stats.wall;
        Some(MergeOutcome { output, stats })
    }

    /// Merges one uploaded module: store ingest, the shared
    /// [`optimize`] run, and printing. Pass `key` (a hash of the raw
    /// upload bytes) to make the response replayable via
    /// [`MergeSession::merge_cached`].
    pub fn merge_module(
        &mut self,
        mut module: Module,
        key: Option<ContentHash>,
    ) -> Result<MergeOutcome, Error> {
        let _req_span = trace::span("session", "merge_request");
        let t0 = Instant::now();
        // Verify before ingest: an invalid upload must be rejected
        // without leaving its functions behind in the store.
        let errs = {
            let _s = trace::span("session", "verify_input");
            fmsa_ir::verify_module(&module)
        };
        if let Some(e) = errs.first() {
            return Err(Error::verify(false, &e.func, e.to_string()));
        }
        let ingest = {
            let _s = trace::span("session", "ingest");
            self.store.ingest_module(&module)?
        };
        // Hash before optimize mutates the module: the cache must record
        // the *uploaded* functions, which is what a replay re-serves.
        let hashes = if key.is_some() { crate::store::module_hashes(&module) } else { Vec::new() };
        let mut stats = optimize(&mut module, &self.config)?;
        self.decisions.append(&mut stats.decisions);
        let output = {
            let _s = trace::span("session", "print");
            printer::print_module(&module)
        };
        let request = RequestStats {
            functions: ingest.functions,
            merges: stats.merges,
            size_before: stats.size_before,
            size_after: stats.size_after,
            reduction_percent: stats.reduction_percent(),
            store_hits: ingest.hits,
            store_misses: ingest.misses,
            store_size: self.store.len(),
            quarantined: stats.quarantine.len(),
            wall: t0.elapsed(),
            from_cache: false,
        };
        self.totals.requests += 1;
        self.totals.merges += request.merges as u64;
        self.totals.functions += request.functions as u64;
        self.totals.wall += request.wall;
        if let Some(key) = key {
            if self.cache.len() >= CACHE_CAP {
                self.cache.pop_front();
            }
            self.cache.push_back(CachedResponse {
                key: key.0,
                output: output.clone(),
                stats: request.clone(),
                hashes,
            });
        }
        Ok(MergeOutcome { output, stats: request })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use fmsa_ir::{FuncBuilder, Value};

    fn clone_module(count: usize) -> Module {
        let mut m = Module::new("m");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t, i32t]);
        for k in 0..count {
            let f = m.create_function(format!("fam{k}"), fn_ty);
            let mut b = FuncBuilder::new(&mut m, f);
            let e = b.block("entry");
            b.switch_to(e);
            let mut v = Value::Param(0);
            for j in 0..12 {
                v = b.add(v, b.const_i32(j));
                v = b.mul(v, Value::Param(1));
            }
            v = b.xor(v, b.const_i32(k as i32 + 100));
            b.ret(Some(v));
        }
        m
    }

    #[test]
    fn session_output_matches_batch_optimize() {
        let cfg = Config::new().threshold(5);
        let mut session = MergeSession::new(cfg.clone());
        let out = session.merge_module(clone_module(4), None).unwrap();
        let mut batch = clone_module(4);
        optimize(&mut batch, &cfg).unwrap();
        assert_eq!(out.output, printer::print_module(&batch));
        assert!(out.stats.merges >= 2);
        assert_eq!(out.stats.store_misses, 4);
    }

    #[test]
    fn repeat_upload_hits_the_store() {
        let mut session = MergeSession::new(Config::new().threshold(5));
        let first = session.merge_module(clone_module(4), None).unwrap();
        let second = session.merge_module(clone_module(4), None).unwrap();
        assert_eq!(first.output, second.output, "same input, same bytes out");
        assert_eq!(second.stats.store_hits, 4);
        assert_eq!(second.stats.store_misses, 0);
        assert!(session.store().hit_rate() > 0.0);
    }

    #[test]
    fn response_cache_replays_byte_identically() {
        let mut session = MergeSession::new(Config::new().threshold(5));
        let key = ContentHash::of_bytes(b"upload-1");
        assert!(session.merge_cached(key).is_none());
        let first = session.merge_module(clone_module(4), Some(key)).unwrap();
        let replay = session.merge_cached(key).expect("cached");
        assert_eq!(replay.output, first.output);
        assert!(replay.stats.from_cache);
        assert_eq!(replay.stats.store_hits, replay.stats.functions);
        assert_eq!(session.totals().cache_hits, 1);
        assert!(session.store().hits() >= 4);
    }

    #[test]
    fn cached_replay_bumps_seen_durably() {
        let dir = std::env::temp_dir().join(format!(
            "fmsa-session-seen-{}-{:p}",
            std::process::id(),
            &CACHE_CAP
        ));
        std::fs::remove_dir_all(&dir).ok();
        let key = ContentHash::of_bytes(b"upload-1");
        {
            let mut session = MergeSession::open(Config::new().threshold(5), &dir).unwrap();
            session.merge_module(clone_module(3), Some(key)).unwrap();
            // Two cache replays: without durable bumps these would leave
            // every seen count at its first-ingest value of 1.
            session.merge_cached(key).expect("cached");
            session.merge_cached(key).expect("cached");
            assert!(session.store().entries().all(|e| e.seen == 3));
        }
        let session = MergeSession::open(Config::new().threshold(5), &dir).unwrap();
        assert_eq!(session.store().len(), 3);
        assert!(
            session.store().entries().all(|e| e.seen == 3),
            "replayed seen bumps must survive a restart"
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn failed_request_leaves_session_usable() {
        let mut session = MergeSession::new(Config::new());
        let mut broken = Module::new("broken");
        let i32t = broken.types.i32();
        let fn_ty = broken.types.func(i32t, vec![]);
        let f = broken.create_function("f", fn_ty);
        let b = broken.func_mut(f).add_block("entry");
        broken.func_mut(f).append_inst(
            b,
            fmsa_ir::Inst::new(
                fmsa_ir::Opcode::Add,
                i32t,
                vec![Value::ConstInt { ty: i32t, bits: 1 }, Value::ConstInt { ty: i32t, bits: 2 }],
            ), // no terminator
        );
        let err = session.merge_module(broken, None).unwrap_err();
        assert_eq!(err.stage(), "verify-input");
        assert!(session.store().is_empty(), "rejected upload must not pollute the store");
        // The session still serves valid requests afterwards.
        let ok = session.merge_module(clone_module(2), None).unwrap();
        assert!(ok.stats.merges >= 1);
    }
}
