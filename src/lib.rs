//! # fmsa — Function Merging by Sequence Alignment
//!
//! Meta-crate re-exporting the whole reproduction of Rocha et al.,
//! *Function Merging by Sequence Alignment* (CGO 2019). See the individual
//! crates for details:
//!
//! * [`ir`] — the LLVM-like IR substrate
//! * [`align`] — Needleman-Wunsch / Hirschberg / Smith-Waterman
//! * [`target`] — TTI-style code-size cost models (x86-64, ARM Thumb)
//! * [`interp`] — IR interpreter (correctness oracle + Fig. 14 runtime)
//! * [`core`] — the FMSA merger, exploration framework, and baselines
//! * [`wasm`] — WebAssembly frontend (binary decoder + lowering to [`ir`])
//! * [`workloads`] — SPEC/MiBench-calibrated synthetic benchmarks
//!
//! # Examples
//!
//! ```
//! use fmsa::ir::{Module, FuncBuilder, Value};
//! use fmsa::core::pass::{run_fmsa, FmsaOptions};
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.i32();
//! let fn_ty = m.types.func(i32t, vec![i32t]);
//! for name in ["a", "b"] {
//!     let f = m.create_function(name, fn_ty);
//!     let mut bl = FuncBuilder::new(&mut m, f);
//!     let e = bl.block("entry");
//!     bl.switch_to(e);
//!     let mut v = Value::Param(0);
//!     for k in 0..10 {
//!         v = bl.add(v, bl.const_i32(k));
//!     }
//!     bl.ret(Some(v));
//! }
//! let stats = run_fmsa(&mut m, &FmsaOptions::default());
//! assert_eq!(stats.merges, 1);
//! ```

pub use fmsa_align as align;
pub use fmsa_core as core;
pub use fmsa_interp as interp;
pub use fmsa_ir as ir;
pub use fmsa_target as target;
pub use fmsa_wasm as wasm;
pub use fmsa_workloads as workloads;
