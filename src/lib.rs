//! # fmsa — Function Merging by Sequence Alignment
//!
//! Meta-crate re-exporting the whole reproduction of Rocha et al.,
//! *Function Merging by Sequence Alignment* (CGO 2019). See the individual
//! crates for details:
//!
//! * [`ir`] — the LLVM-like IR substrate
//! * [`align`] — Needleman-Wunsch / Hirschberg / Smith-Waterman
//! * [`target`] — TTI-style code-size cost models (x86-64, ARM Thumb)
//! * [`interp`] — IR interpreter (correctness oracle + Fig. 14 runtime)
//! * [`core`] — the FMSA merger, exploration framework, and baselines
//! * [`wasm`] — WebAssembly frontend (binary decoder + lowering to [`ir`])
//! * [`workloads`] — SPEC/MiBench-calibrated synthetic benchmarks
//!
//! The unified public API lives at this crate's root: [`Config`]
//! configures a run, [`optimize`] executes it, every failure is one
//! [`enum@Error`], [`load_module_bytes`] auto-detects wasm vs textual IR,
//! and [`MergeSession`]/[`FunctionStore`] are the persistent,
//! store-backed lifecycle the `fmsa-serve` daemon sits on.
//!
//! # Examples
//!
//! ```
//! use fmsa::ir::{Module, FuncBuilder, Value};
//! use fmsa::{optimize, Config};
//!
//! let mut m = Module::new("demo");
//! let i32t = m.types.i32();
//! let fn_ty = m.types.func(i32t, vec![i32t]);
//! for (i, name) in ["a", "b"].into_iter().enumerate() {
//!     let f = m.create_function(name, fn_ty);
//!     let mut bl = FuncBuilder::new(&mut m, f);
//!     let e = bl.block("entry");
//!     bl.switch_to(e);
//!     let mut v = Value::Param(0);
//!     for k in 0..10 {
//!         // The two bodies differ in exactly one constant: too
//!         // different for the identical-merging prepass, ideal for a
//!         // profitable FMSA merge.
//!         let c = if k == 0 { 41 + i as i32 } else { k };
//!         v = bl.add(v, bl.const_i32(c));
//!     }
//!     bl.ret(Some(v));
//! }
//! let stats = optimize(&mut m, &Config::new()).unwrap();
//! assert_eq!(stats.merges, 1);
//! ```

pub use fmsa_align as align;
pub use fmsa_core as core;
pub use fmsa_interp as interp;
pub use fmsa_ir as ir;
pub use fmsa_target as target;
pub use fmsa_wasm as wasm;
pub use fmsa_workloads as workloads;

pub use fmsa_core::{
    optimize, telemetry, Config, ContentHash, Error, FsyncPolicy, FunctionStore, MergeOutcome,
    MergeSession, RequestStats, SessionTotals, StoreOptions,
};

/// Loads a module from raw bytes with `fmsa_opt`-style format
/// auto-detection: bytes starting with the wasm magic (`\0asm`) are
/// decoded and lowered by [`wasm`]; anything else must be UTF-8 textual
/// IR for [`ir::parser`]. `name` becomes the module name (wasm) or is
/// used for diagnostics.
///
/// This is the one loader the CLI (`fmsa_opt`), the daemon
/// (`fmsa-serve`), and the bench harness share, so all three accept the
/// same inputs and classify failures with the same [`Error::stage`]
/// vocabulary (`decode` vs `parse`).
pub fn load_module_bytes(bytes: &[u8], name: &str) -> Result<ir::Module, Error> {
    if wasm::is_wasm(bytes) {
        return wasm::load_wasm(bytes, name).map_err(|e| Error::decode(e.offset, e.to_string()));
    }
    let text = std::str::from_utf8(bytes).map_err(|_| {
        Error::decode(0, "not a wasm binary (no \\0asm magic) and not UTF-8 textual IR")
    })?;
    ir::parser::parse_module(text).map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn load_module_bytes_detects_wasm() {
        let cfg = workloads::WasmFixtureConfig::with_functions(8);
        let bytes = workloads::wasm_fixture_bytes(&cfg);
        let m = load_module_bytes(&bytes, "corpus").unwrap();
        assert!(m.func_ids().len() >= 8);
    }

    #[test]
    fn load_module_bytes_parses_textual_ir() {
        let mut m = ir::Module::new("t");
        let i32t = m.types.i32();
        let fn_ty = m.types.func(i32t, vec![i32t]);
        let f = m.create_function("id", fn_ty);
        let mut b = ir::FuncBuilder::new(&mut m, f);
        let e = b.block("entry");
        b.switch_to(e);
        b.ret(Some(ir::Value::Param(0)));
        let text = ir::printer::print_module(&m);
        let loaded = load_module_bytes(text.as_bytes(), "t").unwrap();
        assert_eq!(ir::printer::print_module(&loaded), text);
    }

    #[test]
    fn load_module_bytes_classifies_failures() {
        // Truncated wasm: decode stage with an offset.
        let err = load_module_bytes(b"\0asm", "x").unwrap_err();
        assert_eq!(err.stage(), "decode");
        // Bad text: parse stage with a span.
        let err = load_module_bytes(b"define nonsense", "x").unwrap_err();
        assert_eq!(err.stage(), "parse");
        // Binary garbage: decode stage.
        let err = load_module_bytes(&[0xff, 0xfe, 0x00, 0x01], "x").unwrap_err();
        assert_eq!(err.stage(), "decode");
    }
}
